"""Plan execution: contexts, results, and the ``execute_plan`` entry.

Execution works on *any* physical plan: static plans run directly;
dynamic plans make their choose-plan decisions at open time through
the context's run-time cost model, exactly as in the paper's start-up
architecture.
"""

import time

from repro.common.errors import ExecutionError, QueryTimeoutError
from repro.cost.formulas import CostModel
from repro.cost.parameters import (
    Bindings,
    MEMORY_PARAMETER,
    ParameterSpace,
    Valuation,
)
from repro.executor.iterators import build_iterator
from repro.executor.vectorized import DEFAULT_BATCH_SIZE, build_batch_iterator
from repro.resilience.deadline import Deadline

#: Valid values of an execution context's ``execution_mode``.
EXECUTION_MODES = ("row", "batch", "compiled")


class ExecutionContext:
    """Everything iterators need: data, bindings, and a cost model."""

    def __init__(self, database, bindings=None, parameter_space=None,
                 use_buffer_pool=False, tracer=None,
                 execution_mode="row", batch_size=None, deadline=None):
        if execution_mode not in EXECUTION_MODES:
            raise ExecutionError(
                "execution_mode must be one of %r, got %r"
                % (EXECUTION_MODES, execution_mode)
            )
        self.database = database
        self.bindings = bindings if bindings is not None else Bindings()
        self.parameter_space = (
            parameter_space if parameter_space is not None else ParameterSpace()
        )
        #: ``"row"`` (Volcano record-at-a-time), ``"batch"``
        #: (vectorized; see :mod:`repro.executor.vectorized`), or
        #: ``"compiled"`` (fused generated pipelines; see
        #: :mod:`repro.executor.compiled`).
        self.execution_mode = execution_mode
        batch_size = DEFAULT_BATCH_SIZE if batch_size is None else int(batch_size)
        if batch_size < 1:
            raise ExecutionError("batch_size must be at least 1")
        #: Target records per batch in ``"batch"`` mode.
        self.batch_size = batch_size
        #: Optional :class:`~repro.observability.trace.Tracer`; iterators
        #: record per-operator spans when one is attached.
        self.tracer = tracer
        #: Optional :class:`~repro.resilience.deadline.Deadline`
        #: (accepts plain seconds); iterators check it at open and the
        #: drive loop checks it at every row/batch boundary.
        self.deadline = Deadline.ensure(deadline)
        self._cost_model = None
        #: choose-plan decisions made during this execution:
        #: list of (choose_plan_node, chosen_alternative)
        self.decisions = []
        if use_buffer_pool:
            from repro.storage.buffer import BufferPool

            #: LRU pool sized by the run-time memory grant ([MaL89]).
            self.buffer_pool = BufferPool(
                self.memory_pages,
                fault_injector=getattr(database, "fault_injector", None),
            )
        else:
            self.buffer_pool = None

    @property
    def io_stats(self):
        """The database's shared I/O accounting."""
        return self.database.io_stats

    @property
    def memory_pages(self):
        """Memory available to hash joins and sorts, in pages.

        An installed fault injector may report a *smaller* grant once
        a memory-drop stage has fired — the mid-query divergence the
        service's degradation path re-decides choose-plans under.
        """
        if self.bindings.has_parameter(MEMORY_PARAMETER):
            pages = int(self.bindings.parameter(MEMORY_PARAMETER))
        elif MEMORY_PARAMETER in self.parameter_space:
            pages = int(self.parameter_space.get(MEMORY_PARAMETER).expected)
        else:
            pages = 64
        injector = getattr(self.database, "fault_injector", None)
        if injector is not None:
            pages = injector.current_memory_pages(pages)
        return pages

    @property
    def cost_model(self):
        """Memoizing cost model under the run-time valuation (lazy)."""
        if self._cost_model is None:
            valuation = Valuation.runtime(self.parameter_space, self.bindings)
            self._cost_model = CostModel(self.database.catalog, valuation)
        return self._cost_model

    def record_decision(self, choose_plan_node, chosen):
        """Log a choose-plan decision (used by plan shrinking)."""
        self.decisions.append((choose_plan_node, chosen))


class ExecutionResult:
    """Records produced plus the accounting of the run."""

    def __init__(self, records, io_snapshot, decisions, elapsed_seconds,
                 trace=None, profile=None):
        self.records = records
        self.io_snapshot = io_snapshot
        self.decisions = decisions
        self.elapsed_seconds = elapsed_seconds
        #: :class:`~repro.observability.trace.ExecutionTrace` of the
        #: run, or ``None`` when executed without a tracer.
        self.trace = trace
        #: :class:`~repro.observability.explain.ExecutionProfile` with
        #: per-operator estimated-vs-actual figures, or ``None``.
        self.profile = profile

    @property
    def row_count(self):
        """Number of result records."""
        return len(self.records)

    def simulated_seconds(self):
        """Fold the I/O counters into simulated seconds."""
        from repro.common.units import CPU_COST_WEIGHT, IO_TIME_PER_PAGE

        pages = self.io_snapshot["pages_read"] + self.io_snapshot["pages_written"]
        return (
            pages * IO_TIME_PER_PAGE
            + self.io_snapshot["records_processed"] * CPU_COST_WEIGHT
        )

    def __repr__(self):
        return "ExecutionResult(%d rows, io=%r)" % (self.row_count, self.io_snapshot)


def execute_plan(plan, database, bindings=None, parameter_space=None,
                 use_buffer_pool=False, tracer=None,
                 execution_mode="row", batch_size=None, deadline=None,
                 compile_pipelines=False, compiled_program=None):
    """Run a physical plan to completion and return the result.

    Unbound user variables in predicates raise
    :class:`~repro.common.errors.ExecutionError`; supply them via
    ``bindings``.  With ``use_buffer_pool=True`` heap-page accesses go
    through an LRU pool sized by the memory grant, so repeated fetches
    of hot pages cost no I/O (the [MaL89] refinement).

    ``execution_mode`` selects the engine: ``"row"`` (the default)
    runs the Volcano record-at-a-time iterators; ``"batch"`` runs the
    vectorized engine (:mod:`repro.executor.vectorized`), moving
    ``batch_size`` records per operator advance; ``"compiled"`` fuses
    streaming operator chains into generated Python closures
    (:mod:`repro.executor.compiled`) driven batch-at-a-time.  All
    modes produce identical result rows, simulated I/O totals, and
    choose-plan decisions; batch and compiled mode are simply faster
    on large inputs.

    ``compile_pipelines=True`` accelerates the *existing* modes with
    the same fused pipelines: row and batch mode execute through the
    pipeline compiler while keeping their declared mode (including row
    mode's per-record deadline granularity) and their observable
    semantics.  ``compiled_program`` optionally supplies a
    pre-populated :class:`~repro.executor.compiled.CompiledPlanProgram`
    (the service passes its plan-cache entry's program here) so
    generated code is shared across invocations; ``None`` compiles
    into a fresh program for this execution alone.

    With a :class:`~repro.observability.trace.Tracer` every operator
    records a span and the result carries a ``trace`` and a per-operator
    estimated-vs-actual ``profile``; tracing never changes the records
    produced or the simulated I/O charged (the differential tests'
    invariant).

    ``deadline`` (seconds, or a prebuilt
    :class:`~repro.resilience.deadline.Deadline`) arms cooperative
    cancellation: iterators check it once at open and the drive loop
    checks it at every row (row mode) or batch (batch mode) boundary.
    Expiry raises :class:`~repro.common.errors.QueryTimeoutError`
    carrying the rows produced so far, the I/O charged so far, and the
    partial trace when a tracer is attached; the plan's iterators are
    closed before the error propagates, so no operator state leaks.
    """
    if plan is None:
        raise ExecutionError("cannot execute an empty plan")
    context = ExecutionContext(database, bindings, parameter_space,
                               use_buffer_pool=use_buffer_pool,
                               tracer=tracer,
                               execution_mode=execution_mode,
                               batch_size=batch_size,
                               deadline=deadline)
    deadline = context.deadline
    before = context.io_stats.snapshot()
    started = time.perf_counter()
    records = []
    try:
        if context.execution_mode == "compiled" or compile_pipelines:
            from repro.executor.compiled import build_compiled_iterator

            root = build_compiled_iterator(plan, context, compiled_program)
            if context.execution_mode == "row":
                # Fused pipelines under row-mode semantics: flatten the
                # batch stream and keep per-record deadline checks.
                stream = root.records()
                if deadline is None:
                    records = list(stream)
                else:
                    try:
                        while True:
                            deadline.check()
                            record = next(stream, None)
                            if record is None:
                                break
                            records.append(record)
                    finally:
                        root.close()
            elif deadline is None:
                for batch in root.batches():
                    records.extend(batch)
            else:
                stream = root.batches()
                try:
                    while True:
                        deadline.check()
                        batch = next(stream, None)
                        if batch is None:
                            break
                        records.extend(batch)
                finally:
                    root.close()
        elif context.execution_mode == "batch":
            root = build_batch_iterator(plan, context)
            if deadline is None:
                for batch in root.batches():
                    records.extend(batch)
            else:
                stream = root.batches()
                try:
                    while True:
                        deadline.check()
                        batch = next(stream, None)
                        if batch is None:
                            break
                        records.extend(batch)
                finally:
                    root.close()
        else:
            root = build_iterator(plan, context)
            if deadline is None:
                records = list(root)
            else:
                stream = iter(root)
                try:
                    while True:
                        deadline.check()
                        record = next(stream, None)
                        if record is None:
                            break
                        records.append(record)
                finally:
                    root.close()
    except QueryTimeoutError as error:
        after = context.io_stats.snapshot()
        error.rows_produced = len(records)
        error.io_snapshot = {key: after[key] - before[key] for key in after}
        if tracer is not None:
            error.trace = tracer.trace()
        raise
    elapsed = time.perf_counter() - started
    after = context.io_stats.snapshot()
    delta = {key: after[key] - before[key] for key in after}
    result = ExecutionResult(records, delta, list(context.decisions), elapsed)
    if tracer is not None:
        from repro.observability.explain import build_profile

        result.trace = tracer.trace()
        result.profile = build_profile(result.trace, context.cost_model)
    return result
