"""Catalog validation of stored plans ([CAK81], paper Section 2).

Activation of an access module begins by validating the plan against
the current catalogs — the I/O the paper's flat 0.1 s start-up charge
stands for.  A plan node is *infeasible* when a structure it depends
on no longer exists (an index was dropped, a relation removed).

* A **static** plan with an infeasible node cannot run;
  :func:`validate_plan` raises
  :class:`~repro.common.errors.InfeasiblePlanError` and the system
  must re-optimize (exactly System R's behaviour).
* A **dynamic** plan degrades gracefully: infeasible alternatives are
  dropped from their choose-plan operators, and the plan survives as
  long as every choose-plan keeps at least one feasible alternative —
  a robustness benefit of dynamic plans beyond parameter drift.
"""

from repro.algebra.physical import (
    BTreeScan,
    ChoosePlan,
    FileScan,
    FilterBTreeScan,
    IndexJoin,
    Materialized,
)
from repro.common.errors import InfeasiblePlanError
from repro.executor.startup import _rebuild


def node_is_feasible(node, catalog):
    """Whether one plan node's catalog dependencies still exist."""
    if isinstance(node, (FileScan, BTreeScan, FilterBTreeScan)):
        if not catalog.has_relation(node.relation_name):
            return False
    if isinstance(node, (BTreeScan, FilterBTreeScan)):
        return catalog.index_on(node.relation_name, node.attribute) is not None
    if isinstance(node, IndexJoin):
        if not catalog.has_relation(node.inner_relation):
            return False
        return (
            catalog.index_on(node.inner_relation, node.inner_attribute)
            is not None
        )
    if isinstance(node, Materialized):
        return True
    return True


def validate_plan(plan, catalog):
    """Validate a plan against the catalogs; returns the feasible plan.

    Choose-plan operators lose their infeasible alternatives (and
    collapse when a single alternative remains).  Raises
    :class:`InfeasiblePlanError` when nothing feasible is left — the
    signal that re-optimization is required.
    """
    cache = {}

    def validate(node):
        cached = cache.get(id(node))
        if cached is not None:
            return cached[1]
        if isinstance(node, ChoosePlan):
            feasible = []
            for alternative in node.alternatives:
                validated = validate(alternative)
                if validated is not None:
                    feasible.append(validated)
            if not feasible:
                result = None
            elif len(feasible) == 1:
                result = feasible[0]
            elif len(feasible) == len(node.alternatives) and all(
                new is old
                for new, old in zip(feasible, node.alternatives)
            ):
                result = node
            else:
                result = ChoosePlan(feasible)
        elif not node_is_feasible(node, catalog):
            result = None
        else:
            children = []
            feasible = True
            for child in node.inputs():
                validated = validate(child)
                if validated is None:
                    feasible = False
                    break
                children.append(validated)
            result = _rebuild(node, children) if feasible else None
        cache[id(node)] = (node, result)
        return result

    validated = validate(plan)
    if validated is None:
        raise InfeasiblePlanError(
            "plan is infeasible under the current catalogs; "
            "re-optimization required"
        )
    return validated
