"""Uncertain cost-model parameters, bindings, and valuations.

A :class:`Parameter` is a named quantity the optimizer may not know at
compile time: the selectivity of an unbound predicate, or the amount
of memory available at run time.  A :class:`ParameterSpace` collects
the parameters of one query; :class:`Bindings` supplies their actual
values at start-up time; a :class:`Valuation` turns parameters into
:class:`~repro.common.intervals.Interval` values for cost formulas.
"""

from repro.common.errors import ExecutionError
from repro.common.intervals import Interval


#: Conventional name of the available-memory parameter (in pages).
MEMORY_PARAMETER = "memory_pages"

#: Paper Section 6: expected memory is 64 pages of 2,048 bytes.
DEFAULT_EXPECTED_MEMORY_PAGES = 64

#: Paper Section 6: unbound memory drawn uniformly from [16, 112] pages.
DEFAULT_MEMORY_BOUNDS = (16, 112)


class Parameter:
    """One uncertain cost-model parameter.

    ``bounds`` is the compile-time domain; ``expected`` is the value a
    traditional optimizer would assume; ``uncertain`` distinguishes
    parameters with genuine run-time bindings from parameters fixed at
    compile time (which still flow through the same machinery).
    """

    __slots__ = ("name", "bounds", "expected", "uncertain")

    def __init__(self, name, bounds, expected, uncertain=True):
        self.name = name
        self.bounds = Interval(*bounds)
        self.expected = float(expected)
        if not self.bounds.contains(self.expected):
            raise ValueError(
                "expected value %r of parameter %r lies outside bounds %r"
                % (expected, name, self.bounds)
            )
        self.uncertain = bool(uncertain)

    @classmethod
    def selectivity(cls, name, expected=0.05, bounds=(0.0, 1.0)):
        """An unbound selection-predicate selectivity (paper defaults)."""
        return cls(name, bounds, expected, uncertain=True)

    @classmethod
    def memory(
        cls,
        expected=DEFAULT_EXPECTED_MEMORY_PAGES,
        bounds=DEFAULT_MEMORY_BOUNDS,
        uncertain=False,
    ):
        """The available-memory parameter.

        ``uncertain=False`` (the default) models the experiments that
        only vary selectivities; pass ``uncertain=True`` for the
        "selectivities and memory" experiment series.
        """
        return cls(MEMORY_PARAMETER, bounds, expected, uncertain=uncertain)

    def __repr__(self):
        kind = "uncertain" if self.uncertain else "known"
        return "Parameter(%r, %s, bounds=%r, expected=%s)" % (
            self.name,
            kind,
            self.bounds,
            self.expected,
        )


class ParameterSpace:
    """The parameters relevant to one query's cost computation."""

    def __init__(self, parameters=()):
        self._parameters = {}
        for parameter in parameters:
            self.add(parameter)
        if MEMORY_PARAMETER not in self._parameters:
            self.add(Parameter.memory())

    def add(self, parameter):
        """Register a parameter, replacing any with the same name."""
        self._parameters[parameter.name] = parameter

    def get(self, name):
        """Look up a parameter by name."""
        try:
            return self._parameters[name]
        except KeyError:
            raise ExecutionError("unknown cost-model parameter %r" % name) from None

    def __contains__(self, name):
        return name in self._parameters

    def names(self):
        """Sorted parameter names."""
        return sorted(self._parameters)

    def uncertain_names(self):
        """Sorted names of parameters with run-time bindings."""
        return sorted(
            name
            for name, parameter in self._parameters.items()
            if parameter.uncertain
        )

    def uncertain_count(self):
        """Number of uncertain parameters (the x-axis of Figures 4-8)."""
        return len(self.uncertain_names())

    def __iter__(self):
        return iter(self._parameters.values())

    def __repr__(self):
        return "ParameterSpace(%s)" % ", ".join(self.names())


class Bindings:
    """Run-time values: parameter bindings plus user-variable values.

    Parameter bindings feed the choose-plan decision procedure's cost
    re-evaluation; user-variable values feed actual predicate
    evaluation in the execution engine.
    """

    def __init__(self, parameters=None, variables=None):
        self._parameters = dict(parameters or {})
        self._variables = dict(variables or {})

    def copy(self):
        """Independent copy; rebinding it leaves the original intact."""
        return Bindings(self._parameters, self._variables)

    # -- cost-model parameters -----------------------------------------

    def bind(self, name, value):
        """Bind one cost-model parameter."""
        self._parameters[name] = float(value)
        return self

    def has_parameter(self, name):
        """True when the parameter has a binding."""
        return name in self._parameters

    def parameter(self, name):
        """Value of a bound parameter."""
        try:
            return self._parameters[name]
        except KeyError:
            raise ExecutionError(
                "cost-model parameter %r has no run-time binding" % name
            ) from None

    def get_parameter(self, name, default=None):
        """Value of a bound parameter, or ``default`` when unbound.

        One dict probe instead of the ``has_parameter`` +
        ``parameter`` pair — the serving hot path checks a handful of
        parameters per invocation.
        """
        return self._parameters.get(name, default)

    def parameter_names(self):
        """Sorted names of bound parameters."""
        return sorted(self._parameters)

    # -- user variables --------------------------------------------------

    def bind_variable(self, name, value):
        """Bind one user variable (host variable in the query text)."""
        self._variables[name] = value
        return self

    def has_variable(self, name):
        """True when the user variable has a value."""
        return name in self._variables

    def variable(self, name):
        """Value of a bound user variable."""
        try:
            return self._variables[name]
        except KeyError:
            raise ExecutionError("user variable %r is unbound" % name) from None

    def __repr__(self):
        return "Bindings(parameters=%r, variables=%r)" % (
            self._parameters,
            self._variables,
        )


class Valuation:
    """Maps parameters and predicates to interval values for costing.

    The three factory methods correspond to the three uses of the cost
    functions described in the module docstring.
    """

    _MODE_EXPECTED = "expected"
    _MODE_BOUNDS = "bounds"
    _MODE_RUNTIME = "runtime"

    def __init__(self, space, mode, bindings=None):
        self.space = space
        self.mode = mode
        self.bindings = bindings
        if mode == self._MODE_RUNTIME and bindings is None:
            raise ExecutionError("a runtime valuation needs bindings")

    @classmethod
    def expected(cls, space):
        """Every parameter at its expected value (static optimization)."""
        return cls(space, cls._MODE_EXPECTED)

    @classmethod
    def bounds(cls, space):
        """Uncertain parameters at their full compile-time intervals."""
        return cls(space, cls._MODE_BOUNDS)

    @classmethod
    def runtime(cls, space, bindings):
        """Uncertain parameters at their actual run-time values."""
        return cls(space, cls._MODE_RUNTIME, bindings)

    @property
    def is_point_valued(self):
        """True when every parameter resolves to a point interval."""
        return self.mode != self._MODE_BOUNDS

    def value_of(self, name):
        """The interval value of a named parameter under this valuation."""
        parameter = self.space.get(name)
        if self.mode == self._MODE_RUNTIME:
            # Start-up time obtains "new and updated cost-model
            # parameter values" (paper Section 4) — a supplied binding
            # wins even for parameters the compile time treated as
            # known (e.g. the actual memory grant); unbound parameters
            # fall back to their expected values.
            if self.bindings.has_parameter(name):
                return Interval.point(self.bindings.parameter(name))
            return Interval.point(parameter.expected)
        if self.mode == self._MODE_EXPECTED or not parameter.uncertain:
            return Interval.point(parameter.expected)
        return parameter.bounds

    def selectivity(self, predicate):
        """Selectivity interval of a selection predicate."""
        if not predicate.is_uncertain:
            return Interval.point(predicate.known_selectivity)
        name = predicate.selectivity_parameter
        if name in self.space:
            return self.value_of(name)
        # Predicate parameter unknown to the space: use the predicate's
        # own compile-time description.
        if self.mode == self._MODE_BOUNDS:
            return predicate.selectivity_bounds
        if self.mode == self._MODE_RUNTIME and self.bindings.has_parameter(name):
            return Interval.point(self.bindings.parameter(name))
        return Interval.point(predicate.expected_selectivity)

    def memory_pages(self):
        """Available memory (pages) under this valuation."""
        return self.value_of(MEMORY_PARAMETER)

    def __repr__(self):
        return "Valuation(mode=%s)" % self.mode
