"""Cost formulas for every physical algorithm (paper Section 5).

All formulas are monotone in their uncertain arguments (cardinalities
and selectivities increase cost; memory decreases it), so evaluating
them at the interval endpoints yields exact interval costs — the
paper's construction: "the upper and lower bounds of the cost
intervals are computed using traditional cost formulas supplied with
the appropriate upper and lower bound values for the parameters ...
assuming that cost functions are monotonic in all their arguments".

A single :class:`CostModel` instance evaluates a whole plan DAG with
memoization (each shared subplan is costed once — the sharing
optimization the paper applies at start-up time).  The same class is
used:

* at compile time with a ``bounds`` valuation (interval costs),
* at compile time with an ``expected`` valuation (static optimizer),
* at start-up time with a ``runtime`` valuation (the choose-plan
  decision procedure re-evaluates these very formulas).
"""

import math

from repro.algebra.physical import (
    BTreeScan,
    ChoosePlan,
    FileScan,
    Filter,
    FilterBTreeScan,
    HashJoin,
    IndexJoin,
    Materialized,
    MergeJoin,
    Project,
    Sort,
)
from repro.common.errors import PlanError
from repro.common.intervals import Interval
from repro.common.units import (
    CPU_COST_WEIGHT,
    IO_TIME_PER_PAGE,
    RECORDS_PER_PAGE,
    SEQ_IO_TIME_PER_PAGE,
    pages_for_records,
)
from repro.cost.model import CHOOSE_PLAN_OVERHEAD_SECONDS, CostResult

#: Leaf capacity assumed by the cost model for B-tree indexes.
BTREE_COST_FANOUT = 32

#: Per-page time for partition spill I/O.  Partition files are written
#: and re-read in runs, so the per-page time sits between the pure
#: sequential and pure random rates; large enough that losing memory at
#: run time genuinely changes which join strategy wins.
SPILL_IO_TIME_PER_PAGE = 0.005


def lru_page_faults(record_count, page_count, buffer_pages):
    """Expected page faults fetching ``record_count`` random records.

    The finite-LRU refinement of Mackert and Lohman ([MaL89], cited by
    the paper): the Cardenas estimate gives the distinct pages touched,
    ``Y = P (1 - (1 - 1/P)^k)``; while they fit in the buffer each
    faults once, afterwards accesses miss with probability
    ``1 - B/P``.  Monotone increasing in ``record_count`` and
    decreasing in ``buffer_pages``, so interval evaluation at the
    corners stays exact.
    """
    if record_count <= 0 or page_count <= 0:
        return 0.0
    per_access_hit = 1.0 / page_count
    distinct = page_count * (1.0 - (1.0 - per_access_hit) ** record_count)
    if distinct <= buffer_pages or buffer_pages >= page_count:
        return distinct
    # Accesses needed to touch ``buffer_pages`` distinct pages:
    fill_accesses = math.log(1.0 - buffer_pages / page_count) / math.log(
        1.0 - per_access_hit
    )
    remaining = max(0.0, record_count - fill_accesses)
    return buffer_pages + remaining * (1.0 - buffer_pages / page_count)


def btree_height(cardinality):
    """Estimated root-to-leaf page count of a B-tree index."""
    if cardinality <= 1:
        return 1
    return 1 + max(1, math.ceil(math.log(cardinality, BTREE_COST_FANOUT)))


def btree_leaf_pages(cardinality):
    """Estimated leaf-page count of a B-tree index."""
    return max(1, math.ceil(cardinality / BTREE_COST_FANOUT))


def _corners(fn, *args):
    """Exact interval image of a monotone scalar function.

    ``args`` are ``(interval, increasing)`` pairs; the lower corner
    uses each interval's lower bound when the function increases in
    that argument and the upper bound otherwise.
    """
    lows = []
    highs = []
    for interval, increasing in args:
        if increasing:
            lows.append(interval.lower)
            highs.append(interval.upper)
        else:
            lows.append(interval.upper)
            highs.append(interval.lower)
    lower = fn(*lows)
    upper = fn(*highs)
    if upper < lower:  # numeric noise in non-strictly-monotone corners
        lower, upper = upper, lower
    return Interval(lower, upper)


def _split_attribute(qualified):
    """Split ``R.a`` into ``("R", "a")``."""
    if "." not in qualified:
        raise PlanError("join attributes must be qualified, got %r" % qualified)
    relation, attribute = qualified.split(".", 1)
    return relation, attribute


class CostModel:
    """Evaluates cost, cardinality, and sort order over a plan DAG."""

    def __init__(
        self,
        catalog,
        valuation,
        choose_plan_overhead=CHOOSE_PLAN_OVERHEAD_SECONDS,
        buffer_aware=False,
    ):
        self.catalog = catalog
        self.valuation = valuation
        self.choose_plan_overhead = choose_plan_overhead
        #: apply the [MaL89] finite-LRU refinement to record fetches
        self.buffer_aware = bool(buffer_aware)
        #: Number of cost-function evaluations performed (cache misses).
        self.evaluations = 0
        self._cache = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def evaluate(self, plan):
        """The :class:`CostResult` of a plan, memoized per node object.

        Shared subplans of the DAG are evaluated exactly once, which is
        the start-up-time optimization the paper relies on: "the
        dynamic plan is stored as a DAG ... and the cost of shared
        subexpressions is computed only once".
        """
        cached = self._cache.get(id(plan))
        if cached is not None:
            # The cache pins the plan object, so the id cannot have
            # been recycled by the allocator.
            return cached[1]
        result = self._dispatch(plan)
        self._cache[id(plan)] = (plan, result)
        self.evaluations += 1
        return result

    def invalidate(self):
        """Drop all cached results (after changing the valuation)."""
        self._cache.clear()

    def join_selectivity(self, predicates):
        """Selectivity of a conjunction of equi-join predicates.

        Per the paper: each predicate contributes one over the larger
        of the two join-attribute domain sizes; known at compile time.
        """
        selectivity = 1.0
        for predicate in predicates:
            left_rel, left_attr = _split_attribute(predicate.left_attribute)
            right_rel, right_attr = _split_attribute(predicate.right_attribute)
            left_domain = self.catalog.domain_size(left_rel, left_attr)
            right_domain = self.catalog.domain_size(right_rel, right_attr)
            selectivity /= max(left_domain, right_domain)
        return selectivity

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, plan):
        if isinstance(plan, FileScan):
            return self._file_scan(plan)
        if isinstance(plan, BTreeScan):
            return self._btree_scan(plan)
        if isinstance(plan, FilterBTreeScan):
            return self._filter_btree_scan(plan)
        if isinstance(plan, Filter):
            return self._filter(plan)
        if isinstance(plan, HashJoin):
            return self._hash_join(plan)
        if isinstance(plan, MergeJoin):
            return self._merge_join(plan)
        if isinstance(plan, IndexJoin):
            return self._index_join(plan)
        if isinstance(plan, Sort):
            return self._sort(plan)
        if isinstance(plan, Project):
            child = self.evaluate(plan.input)
            local = child.cardinality.scale(CPU_COST_WEIGHT)
            return CostResult(
                child.cost + local, child.cardinality, child.sort_orders
            )
        if isinstance(plan, ChoosePlan):
            return self._choose_plan(plan)
        if isinstance(plan, Materialized):
            # A run-time temporary: its production cost is sunk and its
            # cardinality is *observed*, not estimated (paper Section 7).
            return CostResult(
                Interval.zero(),
                Interval.point(plan.observed_cardinality),
                frozenset(),
            )
        raise PlanError("no cost formula for operator %r" % plan)

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------

    def _file_scan(self, plan):
        cardinality = self.catalog.cardinality(plan.relation_name)
        pages = pages_for_records(cardinality)
        cost = pages * SEQ_IO_TIME_PER_PAGE + cardinality * CPU_COST_WEIGHT
        return CostResult(
            Interval.point(cost),
            Interval.point(cardinality),
            frozenset(),
        )

    def _btree_scan(self, plan):
        cardinality = self.catalog.cardinality(plan.relation_name)
        height = btree_height(cardinality)
        leaves = btree_leaf_pages(cardinality)
        heap_pages = pages_for_records(cardinality)
        memory = self.valuation.memory_pages()
        # Unclustered: the descent and leaf chain are cheap, but every
        # record costs one random heap-page fetch (a fault, when the
        # buffer-aware refinement is active).

        clustered = self._index_is_clustered(
            plan.relation_name, plan.attribute
        )

        def formula(memory_pages):
            fetch_io = self._fetch_io_seconds(
                cardinality, heap_pages, memory_pages, clustered
            )
            return (
                height * IO_TIME_PER_PAGE
                + leaves * SEQ_IO_TIME_PER_PAGE
                + fetch_io
                + cardinality * CPU_COST_WEIGHT
            )

        cost = _corners(formula, (memory, False))
        order = "%s.%s" % (plan.relation_name, plan.attribute)
        return CostResult(
            cost,
            Interval.point(cardinality),
            frozenset((order,)),
        )

    def _fetch_faults(self, record_count, heap_pages, memory_pages):
        """I/O faults for random record fetches, buffer-aware or not."""
        if not self.buffer_aware:
            return record_count
        return lru_page_faults(record_count, heap_pages, memory_pages)

    def _fetch_io_seconds(self, record_count, heap_pages, memory_pages,
                          clustered):
        """I/O seconds to fetch ``record_count`` index-qualified records.

        Clustered indexes read the matching records' adjacent pages
        sequentially; unclustered indexes pay one random fault per
        record (or the [MaL89] estimate when buffer-aware).
        """
        if clustered:
            pages = record_count / RECORDS_PER_PAGE
            return pages * SEQ_IO_TIME_PER_PAGE
        faults = self._fetch_faults(record_count, heap_pages, memory_pages)
        return faults * IO_TIME_PER_PAGE

    def _index_is_clustered(self, relation_name, attribute):
        index_info = self.catalog.index_on(relation_name, attribute)
        return index_info is not None and index_info.clustered

    def _filter_btree_scan(self, plan):
        cardinality = self.catalog.cardinality(plan.relation_name)
        selectivity = self.valuation.selectivity(plan.predicate)
        height = btree_height(cardinality)
        leaves = btree_leaf_pages(cardinality)
        heap_pages = pages_for_records(cardinality)
        memory = self.valuation.memory_pages()

        clustered = self._index_is_clustered(
            plan.relation_name, plan.attribute
        )

        def formula(s, memory_pages):
            matches = s * cardinality
            fetch_io = self._fetch_io_seconds(
                matches, heap_pages, memory_pages, clustered
            )
            return (
                height * IO_TIME_PER_PAGE
                + s * leaves * SEQ_IO_TIME_PER_PAGE
                + fetch_io
                + matches * CPU_COST_WEIGHT
            )

        cost = _corners(formula, (selectivity, True), (memory, False))
        out_cardinality = selectivity.scale(cardinality)
        order = "%s.%s" % (plan.relation_name, plan.attribute)
        return CostResult(cost, out_cardinality, frozenset((order,)))

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------

    def _filter(self, plan):
        child = self.evaluate(plan.input)
        selectivity = self.valuation.selectivity(plan.predicate)
        local = child.cardinality.scale(CPU_COST_WEIGHT)
        cost = child.cost + local
        out_cardinality = child.cardinality * selectivity
        return CostResult(cost, out_cardinality, child.sort_orders)

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------

    def _hash_join(self, plan):
        build = self.evaluate(plan.build)
        probe = self.evaluate(plan.probe)
        join_sel = self.join_selectivity(plan.predicates)
        memory = self.valuation.memory_pages()

        def formula(build_card, probe_card, memory_pages):
            build_pages = pages_for_records(build_card)
            probe_pages = pages_for_records(probe_card)
            output = build_card * probe_card * join_sel
            cpu = (
                build_card * 2.0 * CPU_COST_WEIGHT
                + probe_card * 2.0 * CPU_COST_WEIGHT
                + output * CPU_COST_WEIGHT
            )
            if build_pages <= memory_pages or build_pages == 0:
                spill_fraction = 0.0
            else:
                spill_fraction = 1.0 - memory_pages / build_pages
            io = (
                2.0
                * spill_fraction
                * (build_pages + probe_pages)
                * SPILL_IO_TIME_PER_PAGE
            )
            return cpu + io

        local = _corners(
            formula,
            (build.cardinality, True),
            (probe.cardinality, True),
            (memory, False),
        )
        cost = build.cost + probe.cost + local
        out_cardinality = (build.cardinality * probe.cardinality).scale(join_sel)
        # Hash join scrambles any input order.
        return CostResult(cost, out_cardinality, frozenset())

    def _merge_join(self, plan):
        left = self.evaluate(plan.left)
        right = self.evaluate(plan.right)
        join_sel = self.join_selectivity(plan.predicates)

        def formula(left_card, right_card):
            output = left_card * right_card * join_sel
            return (
                (left_card + right_card) * 1.5 * CPU_COST_WEIGHT
                + output * CPU_COST_WEIGHT
            )

        local = _corners(
            formula, (left.cardinality, True), (right.cardinality, True)
        )
        cost = left.cost + right.cost + local
        out_cardinality = (left.cardinality * right.cardinality).scale(join_sel)
        primary = plan.predicates[0]
        orders = frozenset((primary.left_attribute, primary.right_attribute))
        return CostResult(cost, out_cardinality, orders)

    def _index_join(self, plan):
        outer = self.evaluate(plan.outer)
        inner_cardinality = self.catalog.cardinality(plan.inner_relation)
        join_sel = self.join_selectivity(plan.predicates)
        height = btree_height(inner_cardinality)
        matches_per_probe = inner_cardinality * join_sel
        if plan.residual_predicate is not None:
            residual = self.valuation.selectivity(plan.residual_predicate)
        else:
            residual = Interval.point(1.0)

        inner_pages = pages_for_records(inner_cardinality)
        memory = self.valuation.memory_pages()
        clustered = self._index_is_clustered(
            plan.inner_relation, plan.inner_attribute
        )

        def formula(outer_card, residual_sel, memory_pages):
            fetched = outer_card * matches_per_probe
            fetch_io = self._fetch_io_seconds(
                fetched, inner_pages, memory_pages, clustered
            )
            io = outer_card * height * IO_TIME_PER_PAGE + fetch_io
            cpu = (
                outer_card * CPU_COST_WEIGHT
                + fetched * CPU_COST_WEIGHT
                + fetched * residual_sel * CPU_COST_WEIGHT
            )
            return io + cpu

        local = _corners(
            formula,
            (outer.cardinality, True),
            (residual, True),
            (memory, False),
        )
        cost = outer.cost + local
        out_cardinality = (
            outer.cardinality.scale(matches_per_probe) * residual
        )
        return CostResult(cost, out_cardinality, outer.sort_orders)

    # ------------------------------------------------------------------
    # Enforcers
    # ------------------------------------------------------------------

    def _sort(self, plan):
        child = self.evaluate(plan.input)
        memory = self.valuation.memory_pages()

        def formula(card, memory_pages):
            if card <= 1:
                return CPU_COST_WEIGHT
            pages = pages_for_records(card)
            # Floored at the card <= 1 constant: n*log2(n) dips below 1
            # for n < ~1.56, and _corners requires monotonicity in card.
            cpu = max(card * math.log(card, 2), 1.0) * CPU_COST_WEIGHT
            if pages <= memory_pages:
                return cpu
            # External merge sort: one partition pass plus merge passes.
            run_count = pages / max(memory_pages, 2.0)
            merge_passes = max(
                1, math.ceil(math.log(run_count, max(memory_pages - 1, 2)))
            )
            io = 2.0 * pages * merge_passes * SPILL_IO_TIME_PER_PAGE
            return cpu + io

        local = _corners(formula, (child.cardinality, True), (memory, False))
        cost = child.cost + local
        return CostResult(cost, child.cardinality, frozenset((plan.attribute,)))

    def _choose_plan(self, plan):
        results = [self.evaluate(alternative) for alternative in plan.alternatives]
        envelope = Interval.envelope_min([result.cost for result in results])
        cost = envelope + Interval.point(self.choose_plan_overhead)
        cardinality = Interval.hull([result.cardinality for result in results])
        orders = frozenset.intersection(
            *[result.sort_orders for result in results]
        )
        return CostResult(cost, cardinality, orders)
