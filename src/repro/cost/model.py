"""The cost abstract data type: interval costs and their combinators.

Costs are :class:`~repro.common.intervals.Interval` values measured in
seconds.  This module adds the plan-level combinators the paper
defines in Section 5:

* :func:`compare_costs` — the DBI-defined comparison, four-valued;
* :func:`choose_plan_cost` — the cost of a dynamic (sub)plan: the
  pointwise minimum envelope of the alternatives plus the decision
  overhead; the paper's worked example ``[0,10] vs [1,1]`` with
  overhead ``[0.01, 0.01]`` yields ``[0.01, 1.01]``.
"""

from repro.common.intervals import Interval
from repro.common.ordering import PartialOrder

#: Cost charged for evaluating one choose-plan decision procedure at
#: start-up time.  Small relative to any data manipulation, as the
#: paper requires (its example uses [0.01, 0.01]; we are slightly more
#: optimistic because our decision procedures memoize shared subplans).
CHOOSE_PLAN_OVERHEAD_SECONDS = 0.01


class CostResult:
    """Everything the cost model derives for one plan node.

    ``cost`` and ``cardinality`` are intervals; ``sort_orders`` is the
    frozenset of qualified attributes the output is sorted on (possibly
    empty).  Instances are cached per plan node by the evaluator.
    """

    __slots__ = ("cost", "cardinality", "sort_orders")

    def __init__(self, cost, cardinality, sort_orders=frozenset()):
        self.cost = cost
        self.cardinality = cardinality
        self.sort_orders = frozenset(sort_orders)

    def __repr__(self):
        return "CostResult(cost=%r, cardinality=%r, sorted_on=%s)" % (
            self.cost,
            self.cardinality,
            sorted(self.sort_orders) or "-",
        )


def compare_costs(left, right, exhaustive=False):
    """Compare two cost intervals per the paper's rules.

    With ``exhaustive=True`` every pair of distinct costs is declared
    incomparable — the mode that produces the paper's "exhaustive
    plan", used to validate the optimality guarantee.
    """
    if exhaustive:
        if left == right and left.is_point:
            return PartialOrder.EQUAL
        return PartialOrder.INCOMPARABLE
    return left.compare(right)


def choose_plan_cost(alternative_costs, overhead=CHOOSE_PLAN_OVERHEAD_SECONDS):
    """Cost of a choose-plan node over the given alternatives.

    The operator always executes its cheapest input, so the combined
    cost is the interval ``[min of lowers, min of uppers]`` plus the
    decision-procedure overhead (paper Section 5).
    """
    envelope = Interval.envelope_min(alternative_costs)
    return envelope + Interval.point(overhead)


def add_costs(costs):
    """Sum a sequence of cost intervals (both bounds add)."""
    total = Interval.zero()
    for cost in costs:
        total = total + cost
    return total
