"""The cost model: uncertain parameters, valuations, and cost formulas.

The paper encapsulates cost in an abstract data type whose comparison
may return "incomparable" (Section 3).  Here cost is an
:class:`~repro.common.intervals.Interval` of seconds; the same cost
*formulas* serve three purposes, differing only in the *valuation*
used for the uncertain parameters:

* ``expected`` valuation (every parameter a point at its expected
  value) — traditional static optimization;
* ``bounds`` valuation (uncertain parameters as their full intervals)
  — dynamic-plan optimization;
* ``runtime`` valuation (uncertain parameters bound to actual values)
  — the choose-plan decision procedure at start-up time and run-time
  optimization.
"""

from repro.cost.model import (
    CHOOSE_PLAN_OVERHEAD_SECONDS,
    CostResult,
    choose_plan_cost,
    compare_costs,
)
from repro.cost.formulas import CostModel
from repro.cost.parameters import (
    Bindings,
    MEMORY_PARAMETER,
    Parameter,
    ParameterSpace,
    Valuation,
)

__all__ = [
    "Bindings",
    "CHOOSE_PLAN_OVERHEAD_SECONDS",
    "CostModel",
    "CostResult",
    "MEMORY_PARAMETER",
    "Parameter",
    "ParameterSpace",
    "Valuation",
    "choose_plan_cost",
    "compare_costs",
]
