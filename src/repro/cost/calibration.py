"""Calibration between measured Python CPU time and the simulated
machine's timescale.

The paper measures optimizer and start-up CPU on the same DECstation
5000/125 whose disk its cost model describes, so measured CPU and
modelled I/O seconds mix directly.  Our optimizer runs as Python on a
modern CPU while the cost model still describes the paper's disk
(0.01 s per random page).  Where an experiment *combines* measured CPU
with modelled I/O — total start-up time, total run-time effort, and
the break-even analyses of Figures 3 and 8 — measured CPU seconds are
multiplied by :data:`DEFAULT_CPU_SCALE` to express them on the
simulated machine.

Calibration anchor: the paper's prototype evaluates the 14,090 cost
functions of query 5's dynamic plan in 5.8 s, about 2,400 evaluations
per second.  :func:`measure_evaluation_rate` shows this Python
implementation performs roughly 10^5-10^6 evaluations per second, so
the default scale is 500.  Experiments report raw measured seconds
alongside the scaled values, and the scale only scales — it never
changes which plan wins, only where time-based break-evens fall.
"""

import time

from repro.cost.formulas import CostModel
from repro.cost.parameters import Valuation

#: Paper prototype's cost-function evaluation rate (evaluations/sec).
PAPER_EVALUATION_RATE = 14090 / 5.8

#: Default measured-CPU to simulated-seconds multiplier.
DEFAULT_CPU_SCALE = 500.0


def measure_evaluation_rate(catalog, plan, parameter_space, repetitions=50):
    """Measured cost-function evaluations per second for a plan.

    Each repetition uses a fresh memoizing cost model, so every node of
    the DAG is evaluated once per repetition — the same work a
    choose-plan decision pass performs.
    """
    valuation = Valuation.expected(parameter_space)
    total_evaluations = 0
    started = time.perf_counter()
    for _ in range(repetitions):
        model = CostModel(catalog, valuation)
        model.evaluate(plan)
        total_evaluations += model.evaluations
    elapsed = time.perf_counter() - started
    if elapsed <= 0:
        return float("inf")
    return total_evaluations / elapsed


def derive_cpu_scale(catalog, plan, parameter_space, repetitions=50):
    """A cpu-scale calibrated against the paper's evaluation rate."""
    rate = measure_evaluation_rate(catalog, plan, parameter_space, repetitions)
    if rate == float("inf"):
        return DEFAULT_CPU_SCALE
    return max(1.0, rate / PAPER_EVALUATION_RATE)
