"""Result containers for the experiment harness."""

from repro.cost.calibration import DEFAULT_CPU_SCALE


class ExperimentSettings:
    """Knobs shared by all figure experiments.

    ``invocations`` is the paper's N (100); benchmarks may lower it.
    ``cpu_scale`` converts measured Python CPU seconds to the simulated
    machine's timescale (see :mod:`repro.cost.calibration`).
    """

    def __init__(
        self,
        invocations=100,
        seed=0,
        binding_seed=7,
        cpu_scale=DEFAULT_CPU_SCALE,
        query_numbers=(1, 2, 3, 4, 5),
    ):
        self.invocations = int(invocations)
        self.seed = int(seed)
        self.binding_seed = int(binding_seed)
        self.cpu_scale = float(cpu_scale)
        self.query_numbers = tuple(query_numbers)

    def __repr__(self):
        return "ExperimentSettings(N=%d, cpu_scale=%s)" % (
            self.invocations,
            self.cpu_scale,
        )


class FigureResult:
    """One reproduced figure: named series of (x, y) points plus notes.

    ``series`` maps a series label (e.g. ``"dynamic, selectivities"``)
    to a list of points; each point is a dict with at least
    ``uncertain_variables`` (the x-axis of Figures 4-8), ``query`` and
    ``value``.
    """

    def __init__(self, figure_id, title, x_label, y_label, paper_claim):
        self.figure_id = figure_id
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.paper_claim = paper_claim
        self.series = {}
        self.notes = []

    def add_point(self, series_name, query_name, uncertain_variables, value,
                  **extra):
        """Append one data point to a series."""
        point = {
            "query": query_name,
            "uncertain_variables": uncertain_variables,
            "value": value,
        }
        point.update(extra)
        self.series.setdefault(series_name, []).append(point)
        return point

    def add_note(self, note):
        """Attach a free-form observation to the figure."""
        self.notes.append(note)

    def points(self, series_name):
        """All points of one series."""
        return self.series.get(series_name, [])

    def value_for(self, series_name, query_name):
        """The value of a named series at a named query."""
        for point in self.points(series_name):
            if point["query"] == query_name:
                return point["value"]
        raise KeyError(
            "figure %s has no point for series %r query %r"
            % (self.figure_id, series_name, query_name)
        )

    def __repr__(self):
        return "FigureResult(%s: %d series)" % (self.figure_id, len(self.series))
