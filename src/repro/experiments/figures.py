"""Reproduction of every table and figure in the paper's Section 6.

The x-axis of Figures 4-8 is the number of uncertain variables: the
five queries contribute 1, 2, 4, 6, and 10 uncertain selectivities;
the "selectivities and memory" series adds one more uncertain variable
per query.
"""

from repro.cost.parameters import MEMORY_PARAMETER
from repro.experiments.results import ExperimentSettings, FigureResult
from repro.scenarios.breakeven import (
    breakeven_runtime_vs_dynamic,
    breakeven_static_vs_dynamic,
)
from repro.scenarios.dynamic_scenario import DynamicPlanScenario
from repro.scenarios.runtime_scenario import RunTimeOptimizationScenario
from repro.scenarios.static_scenario import StaticPlanScenario
from repro.workloads.bindings import binding_series
from repro.workloads.queries import paper_workload

#: Series labels matching the paper's legends.
SERIES_SEL = "selectivities"
SERIES_SEL_MEM = "selectivities and memory"


class _Bundle:
    """Scenario results for one (query, memory-uncertainty) cell."""

    def __init__(self, workload, static, dynamic, runtime,
                 static_scenario, dynamic_scenario):
        self.workload = workload
        self.static = static
        self.dynamic = dynamic
        self.runtime = runtime
        self.static_scenario = static_scenario
        self.dynamic_scenario = dynamic_scenario

    @property
    def uncertain_variables(self):
        """X-axis value: uncertain parameter count of the query."""
        return self.workload.query.uncertain_variable_count()


class ExperimentContext:
    """Shared, lazily computed scenario results for all figures.

    Running the three scenarios once per (query, memory) cell and
    reusing them across Figures 4-8 mirrors the paper's single
    experimental campaign and keeps the harness affordable.
    """

    def __init__(self, settings=None):
        self.settings = settings if settings is not None else ExperimentSettings()
        self._bundles = {}

    def bundle(self, query_number, memory_uncertain):
        """Scenario results for one cell, computed on first use."""
        key = (query_number, memory_uncertain)
        cached = self._bundles.get(key)
        if cached is not None:
            return cached
        settings = self.settings
        workload = paper_workload(
            query_number, memory_uncertain=memory_uncertain, seed=settings.seed
        )
        series = binding_series(
            workload, count=settings.invocations, seed=settings.binding_seed
        )
        static_scenario = StaticPlanScenario(
            workload, cpu_scale=settings.cpu_scale
        )
        dynamic_scenario = DynamicPlanScenario(
            workload, cpu_scale=settings.cpu_scale
        )
        runtime_scenario = RunTimeOptimizationScenario(
            workload, cpu_scale=settings.cpu_scale
        )
        bundle = _Bundle(
            workload,
            static_scenario.run_series(series),
            dynamic_scenario.run_series(series),
            runtime_scenario.run_series(series),
            static_scenario,
            dynamic_scenario,
        )
        self._bundles[key] = bundle
        return bundle

    def cells(self):
        """All (query_number, memory_uncertain) cells, paper order."""
        for memory_uncertain in (False, True):
            for query_number in self.settings.query_numbers:
                yield query_number, memory_uncertain


def _context(settings_or_context):
    if isinstance(settings_or_context, ExperimentContext):
        return settings_or_context
    return ExperimentContext(settings_or_context)


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------


def table1_algebra():
    """The logical and physical algebra of the prototype (Table 1)."""
    return {
        "Get-Set": ["File-Scan", "B-tree-Scan"],
        "Select": ["Filter", "Filter-B-tree-Scan"],
        "Join": ["Hash-Join", "Merge-Join", "Index-Join"],
        "Sort Order (enforcer)": ["Sort"],
        "Plan Robustness (enforcer)": ["Choose-Plan"],
    }


# ----------------------------------------------------------------------
# Figure 3 — the three optimization scenarios
# ----------------------------------------------------------------------


def figure3_scenarios(settings=None, query_number=3):
    """Total run-time effort of the three scenarios over N invocations.

    Validates the paper's inequalities: dynamic plans beat static plans
    (``e + N f + sum g  <  a + N b + sum c``) and beat run-time
    optimization (``e + N f + sum g  <  N a + sum d``) for non-trivial
    queries.
    """
    context = _context(settings)
    figure = FigureResult(
        "figure3",
        "Alternative optimization scenarios (total effort, N invocations)",
        "scenario",
        "total seconds (compile + run time)",
        "dynamic plans win overall once N exceeds the break-even point",
    )
    bundle = context.bundle(query_number, False)
    for name, result in (
        ("static", bundle.static),
        ("run-time optimization", bundle.runtime),
        ("dynamic plans", bundle.dynamic),
    ):
        figure.add_point(
            name,
            bundle.workload.name,
            bundle.uncertain_variables,
            result.total_effort(),
            compile_seconds=result.compile_seconds,
            average_execution=result.average_execution_seconds,
            average_activation=result.average_activation_seconds,
        )
    figure.add_note(
        "g_i = d_i check: dynamic avg execution %.4f vs run-time "
        "optimization avg execution %.4f"
        % (
            bundle.dynamic.average_execution_seconds,
            bundle.runtime.average_execution_seconds,
        )
    )
    return figure


# ----------------------------------------------------------------------
# Figure 4 — execution times of static and dynamic plans
# ----------------------------------------------------------------------


def figure4_execution_times(settings=None):
    """Average execution times, static vs dynamic plans (Figure 4)."""
    context = _context(settings)
    figure = FigureResult(
        "figure4",
        "Execution times of static and dynamic plans",
        "number of uncertain variables",
        "average run time [sec]",
        "static plans not competitive; gap grows from ~5x (query 1) to "
        "~24x (query 5); memory uncertainty accentuates the difference",
    )
    for query_number, memory_uncertain in context.cells():
        bundle = context.bundle(query_number, memory_uncertain)
        label = SERIES_SEL_MEM if memory_uncertain else SERIES_SEL
        figure.add_point(
            "static, %s" % label,
            bundle.workload.name,
            bundle.uncertain_variables,
            bundle.static.average_execution_seconds,
        )
        figure.add_point(
            "dynamic, %s" % label,
            bundle.workload.name,
            bundle.uncertain_variables,
            bundle.dynamic.average_execution_seconds,
            ratio=bundle.static.average_execution_seconds
            / max(bundle.dynamic.average_execution_seconds, 1e-12),
        )
    return figure


# ----------------------------------------------------------------------
# Figure 5 — optimization times
# ----------------------------------------------------------------------


def figure5_optimization_times(settings=None):
    """Optimization time, static vs dynamic plans (Figure 5).

    Reported in *measured* CPU seconds of this prototype (the paper
    also reports truly measured times); the interesting quantity is the
    dynamic/static ratio, which the paper bounds by a factor of 3.
    """
    context = _context(settings)
    figure = FigureResult(
        "figure5",
        "Optimization time for static and dynamic plans",
        "number of uncertain variables",
        "optimize time [sec, measured]",
        "dynamic-plan optimization slower, but within a factor of ~3, "
        "due to weakened branch-and-bound pruning; memory uncertainty "
        "adds little",
    )
    scale = context.settings.cpu_scale
    for query_number, memory_uncertain in context.cells():
        bundle = context.bundle(query_number, memory_uncertain)
        label = SERIES_SEL_MEM if memory_uncertain else SERIES_SEL
        static_seconds = bundle.static.compile_seconds / scale
        dynamic_seconds = bundle.dynamic.compile_seconds / scale
        figure.add_point(
            "static, %s" % label,
            bundle.workload.name,
            bundle.uncertain_variables,
            static_seconds,
        )
        figure.add_point(
            "dynamic, %s" % label,
            bundle.workload.name,
            bundle.uncertain_variables,
            dynamic_seconds,
            ratio=dynamic_seconds / max(static_seconds, 1e-12),
        )
    return figure


# ----------------------------------------------------------------------
# Figure 6 — plan sizes
# ----------------------------------------------------------------------


def figure6_plan_sizes(settings=None):
    """Plan sizes (operator nodes in the DAG), static vs dynamic."""
    context = _context(settings)
    figure = FigureResult(
        "figure6",
        "Plan sizes for static and dynamic plans",
        "number of uncertain variables",
        "number of plan nodes",
        "dynamic plans orders of magnitude larger (paper: 21 vs 14,090 "
        "nodes for query 5); uncertain memory barely increases sizes",
    )
    for query_number, memory_uncertain in context.cells():
        bundle = context.bundle(query_number, memory_uncertain)
        label = SERIES_SEL_MEM if memory_uncertain else SERIES_SEL
        figure.add_point(
            "static, %s" % label,
            bundle.workload.name,
            bundle.uncertain_variables,
            bundle.static.plan_nodes,
        )
        figure.add_point(
            "dynamic, %s" % label,
            bundle.workload.name,
            bundle.uncertain_variables,
            bundle.dynamic.plan_nodes,
            choose_plans=bundle.dynamic.extra.get("choose_plan_count"),
        )
    return figure


# ----------------------------------------------------------------------
# Figure 7 — start-up times of dynamic plans
# ----------------------------------------------------------------------


def figure7_startup_times(settings=None):
    """Start-up CPU times for dynamic plans (Figure 7).

    The CPU effort of evaluating every choose-plan decision procedure,
    with shared subplans costed once; parallels plan size.  Both raw
    measured seconds and simulated-machine seconds are reported.
    """
    context = _context(settings)
    figure = FigureResult(
        "figure7",
        "Start-up times for dynamic plans, CPU only",
        "number of uncertain variables",
        "start-up CPU time [sec]",
        "start-up CPU parallels plan size and stays small relative to "
        "the execution-time savings (paper: 5.8 s for the most complex "
        "plan vs 186 s saved)",
    )
    scale = context.settings.cpu_scale
    for query_number, memory_uncertain in context.cells():
        bundle = context.bundle(query_number, memory_uncertain)
        label = SERIES_SEL_MEM if memory_uncertain else SERIES_SEL
        # Average decision CPU over all invocations: activation minus
        # the fixed catalog-validation and module-read components.
        module = bundle.dynamic_scenario.module
        from repro.common.units import CATALOG_VALIDATION_SECONDS

        scaled_cpu = (
            bundle.dynamic.average_activation_seconds
            - CATALOG_VALIDATION_SECONDS
            - module.read_seconds()
        )
        report = bundle.dynamic_scenario.last_report
        figure.add_point(
            "dynamic, %s" % label,
            bundle.workload.name,
            bundle.uncertain_variables,
            max(scaled_cpu, 0.0),
            measured_seconds=max(scaled_cpu, 0.0) / scale,
            decisions=report.decisions if report else 0,
            cost_evaluations=report.cost_evaluations if report else 0,
            module_io_seconds=module.read_seconds(),
        )
    figure.add_note(
        "values are measured CPU seconds times cpu_scale=%s "
        "(simulated-machine calibration)" % context.settings.cpu_scale
    )
    return figure


# ----------------------------------------------------------------------
# Figure 8 — run-time optimization versus dynamic plans
# ----------------------------------------------------------------------


def figure8_runtime_vs_dynamic(settings=None):
    """Per-invocation run-time effort: run-time optimization vs dynamic
    plans (Figure 8), plus the break-even points of Section 6."""
    context = _context(settings)
    figure = FigureResult(
        "figure8",
        "Run-time optimization versus dynamic plans",
        "number of uncertain variables",
        "per-invocation run-time effort [sec]",
        "dynamic plans cheaper per invocation for all but the simplest "
        "queries (factor >2 for query 5); break-even after 2-4 "
        "invocations",
    )
    for query_number, memory_uncertain in context.cells():
        bundle = context.bundle(query_number, memory_uncertain)
        label = SERIES_SEL_MEM if memory_uncertain else SERIES_SEL
        runtime_effort = bundle.runtime.average_run_time_effort
        dynamic_effort = bundle.dynamic.average_run_time_effort
        figure.add_point(
            "run-time optimization, %s" % label,
            bundle.workload.name,
            bundle.uncertain_variables,
            runtime_effort,
        )
        figure.add_point(
            "dynamic, %s" % label,
            bundle.workload.name,
            bundle.uncertain_variables,
            dynamic_effort,
            ratio=runtime_effort / max(dynamic_effort, 1e-12),
            breakeven_vs_runtime=breakeven_runtime_vs_dynamic(
                bundle.runtime, bundle.dynamic
            ),
            breakeven_vs_static=breakeven_static_vs_dynamic(
                bundle.static, bundle.dynamic
            ),
        )
    return figure


# ----------------------------------------------------------------------
# Memory parameter sanity helper (used by tests)
# ----------------------------------------------------------------------


def memory_is_uncertain(workload):
    """True when the workload treats memory as a run-time parameter."""
    return workload.query.parameter_space.get(MEMORY_PARAMETER).uncertain
