"""Experiment harness: regenerate every table and figure of Section 6.

Each ``figure*`` function returns a :class:`~repro.experiments.results.
FigureResult` holding the paper's series; :mod:`~repro.experiments.
report` renders them as text tables, and :mod:`~repro.experiments.
runner` executes the full evaluation in one call (used by the
benchmarks and by ``python -m repro.experiments.runner``).
"""

from repro.experiments.figures import (
    figure3_scenarios,
    figure4_execution_times,
    figure5_optimization_times,
    figure6_plan_sizes,
    figure7_startup_times,
    figure8_runtime_vs_dynamic,
    table1_algebra,
)
from repro.experiments.results import ExperimentSettings, FigureResult
from repro.experiments.report import render_figure, render_report
from repro.experiments.runner import run_all_experiments

__all__ = [
    "ExperimentSettings",
    "FigureResult",
    "figure3_scenarios",
    "figure4_execution_times",
    "figure5_optimization_times",
    "figure6_plan_sizes",
    "figure7_startup_times",
    "figure8_runtime_vs_dynamic",
    "render_figure",
    "render_report",
    "run_all_experiments",
    "table1_algebra",
]
