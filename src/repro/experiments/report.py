"""Text rendering of reproduced figures.

The renderer prints each figure as a table with one row per query and
one column per series — the same rows/series the paper plots — plus
the paper's claim, so paper-vs-measured comparison is immediate.
"""


def _format_value(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return "%.5f" % value
        return "%.3f" % value
    return str(value)


def render_figure(figure):
    """Render one :class:`FigureResult` as a text block."""
    lines = []
    lines.append("=" * 72)
    lines.append("%s — %s" % (figure.figure_id.upper(), figure.title))
    lines.append("paper: %s" % figure.paper_claim)
    lines.append("-" * 72)

    series_names = list(figure.series)
    # Row keys: (query, uncertain variables), ordered by appearance.
    rows = []
    seen = set()
    for name in series_names:
        for point in figure.points(name):
            key = (point["query"], point["uncertain_variables"])
            if key not in seen:
                seen.add(key)
                rows.append(key)

    header = ["query", "#unc"] + series_names
    widths = [max(10, len(h)) for h in header]
    table = []
    for query, uncertain in rows:
        row = [query, str(uncertain)]
        for name in series_names:
            value = "-"
            for point in figure.points(name):
                if point["query"] == query:
                    value = _format_value(point["value"])
                    break
            row.append(value)
        table.append(row)
    for row in table + [header]:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(row):
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))

    lines.append(fmt(header))
    for row in table:
        lines.append(fmt(row))
    for note in figure.notes:
        lines.append("note: %s" % note)
    return "\n".join(lines)


def render_table1(table):
    """Render the Table 1 algebra mapping."""
    lines = []
    lines.append("=" * 72)
    lines.append("TABLE 1 — Logical and Physical Algebra Operators")
    lines.append("-" * 72)
    width = max(len(name) for name in table)
    for logical, algorithms in table.items():
        lines.append("%s  %s" % (logical.ljust(width), ", ".join(algorithms)))
    return "\n".join(lines)


def render_report(figures, table1=None, settings=None):
    """Render a full evaluation report (all figures, one string)."""
    blocks = []
    if settings is not None:
        blocks.append(
            "Dynamic Query Evaluation Plans — reproduced evaluation "
            "(N=%d invocations per query, cpu_scale=%s)"
            % (settings.invocations, settings.cpu_scale)
        )
    if table1 is not None:
        blocks.append(render_table1(table1))
    for figure in figures:
        blocks.append(render_figure(figure))
    return "\n\n".join(blocks)


def figure_to_csv(figure):
    """Render a figure's series as CSV (query, uncertain, series, value)."""
    lines = ["query,uncertain_variables,series,value"]
    for series_name, points in figure.series.items():
        for point in points:
            lines.append(
                "%s,%d,%s,%s"
                % (
                    point["query"],
                    point["uncertain_variables"],
                    series_name.replace(",", ";"),
                    point["value"],
                )
            )
    return "\n".join(lines) + "\n"


def render_ascii_chart(figure, width=60, log_scale=True):
    """Plot a figure as an ASCII chart, one mark per series.

    The paper's Figures 4-8 use log-scale y-axes; so does this chart
    (each row is one (query, series) value, the bar length encodes the
    magnitude).
    """
    import math

    marks = "*o+x#@%&"
    rows = []
    for index, (series_name, points) in enumerate(sorted(figure.series.items())):
        mark = marks[index % len(marks)]
        for point in points:
            value = point["value"]
            if value is None:
                continue
            rows.append((point["query"], series_name, mark, float(value)))
    if not rows:
        return "(no data)"
    values = [row[3] for row in rows]
    positive = [value for value in values if value > 0]
    floor = min(positive) if positive else 1.0
    top = max(values + [floor])

    def scale(value):
        if value <= 0:
            return 0
        if not log_scale or top <= floor:
            return int(width * value / top)
        span = math.log(top / floor) or 1.0
        return int(width * math.log(max(value, floor) / floor) / span)

    label_width = max(len("%s %s" % (row[0], row[1])) for row in rows)
    lines = [
        "%s — %s (y: %s)"
        % (figure.figure_id, figure.title, "log scale" if log_scale else "linear"),
    ]
    for query, series_name, mark, value in rows:
        label = ("%s %s" % (query, series_name)).ljust(label_width)
        lines.append("%s |%s%s %.3g" % (label, "-" * scale(value), mark, value))
    return "\n".join(lines)
