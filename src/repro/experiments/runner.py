"""One-shot runner for the complete reproduced evaluation.

``python -m repro.experiments.runner [N] [--csv DIR] [--accuracy]
[--execution-mode row|batch]`` optimizes the five paper queries in all
three scenarios (with and without memory uncertainty), regenerates
Figures 3-8 and Table 1, prints the report, and optionally writes one
CSV per figure into DIR (for external plotting tools).  ``--accuracy``
appends the cost-model accuracy report (per-operator q-error
distributions from a traced replay of the five queries; see
:mod:`repro.observability.accuracy`); ``--execution-mode`` selects the
executor that replay runs under.
"""

import os
import sys

from repro.experiments.figures import (
    ExperimentContext,
    figure3_scenarios,
    figure4_execution_times,
    figure5_optimization_times,
    figure6_plan_sizes,
    figure7_startup_times,
    figure8_runtime_vs_dynamic,
    table1_algebra,
)
from repro.experiments.report import render_report
from repro.experiments.results import ExperimentSettings


def run_all_experiments(settings=None):
    """Compute every figure; returns ``(figures, table1, settings)``."""
    if settings is None:
        settings = ExperimentSettings()
    context = ExperimentContext(settings)
    figures = [
        figure3_scenarios(context),
        figure4_execution_times(context),
        figure5_optimization_times(context),
        figure6_plan_sizes(context),
        figure7_startup_times(context),
        figure8_runtime_vs_dynamic(context),
    ]
    return figures, table1_algebra(), settings


def write_csvs(figures, directory):
    """Write one CSV per figure into ``directory``; returns the paths."""
    from repro.experiments.report import figure_to_csv

    os.makedirs(directory, exist_ok=True)
    paths = []
    for figure in figures:
        path = os.path.join(directory, "%s.csv" % figure.figure_id)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(figure_to_csv(figure))
        paths.append(path)
    return paths


def main(argv=None):
    """CLI entry: ``[N] [--csv DIR] [--accuracy] [--execution-mode M]``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    csv_directory = None
    if "--csv" in argv:
        position = argv.index("--csv")
        try:
            csv_directory = argv[position + 1]
        except IndexError:
            print("--csv requires a directory argument")
            return 2
        del argv[position : position + 2]
    execution_mode = "row"
    if "--execution-mode" in argv:
        position = argv.index("--execution-mode")
        try:
            execution_mode = argv[position + 1]
        except IndexError:
            print("--execution-mode requires 'row', 'batch', or 'compiled'")
            return 2
        if execution_mode not in ("row", "batch", "compiled"):
            print("--execution-mode must be 'row', 'batch', or 'compiled'")
            return 2
        del argv[position : position + 2]
    with_accuracy = "--accuracy" in argv
    if with_accuracy:
        argv.remove("--accuracy")
    invocations = int(argv[0]) if argv else 100
    settings = ExperimentSettings(invocations=invocations)
    figures, table1, settings = run_all_experiments(settings)
    print(render_report(figures, table1, settings))
    if with_accuracy:
        from repro.observability.accuracy import cost_model_accuracy

        report = cost_model_accuracy(
            seed=settings.seed, execution_mode=execution_mode
        )
        print()
        print(report.render())
    if csv_directory is not None:
        for path in write_csvs(figures, csv_directory):
            print("wrote %s" % path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
