"""Tokenizer, parser, and binder for the embedded-SQL subset.

Grammar (case-insensitive keywords)::

    query      :=  SELECT select_list FROM table_list [ WHERE condition ]
    select_list:=  '*'  |  NAME '.' NAME ( ',' NAME '.' NAME )*
    table_list :=  NAME ( ',' NAME )*
    condition  :=  comparison ( AND comparison )*
    comparison :=  operand comp_op operand
    operand    :=  NAME '.' NAME  |  NUMBER  |  ':' NAME
    comp_op    :=  '=' | '<>' | '<' | '<=' | '>' | '>='

Binding resolves operands against the catalog: attribute-vs-attribute
equalities become join predicates; attribute-vs-host-variable
comparisons become *uncertain* selections (the paper's unbound
predicates); attribute-vs-literal comparisons become selections whose
selectivity is estimated from catalog statistics under the classic
uniform-domain assumption.
"""

import re

from repro.algebra.expressions import (
    Comparison,
    ComparisonOp,
    JoinPredicate,
    SelectionPredicate,
    UserVariable,
)
from repro.common.errors import OptimizationError
from repro.optimizer.query import QuerySpec


class SqlSyntaxError(OptimizationError):
    """Raised for queries outside the supported subset."""


_TOKEN_PATTERN = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<param>:[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|<>|=|<|>)
  | (?P<punct>[.,*])
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset(("SELECT", "FROM", "WHERE", "AND"))


class _Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind, value, position):
        self.kind = kind
        self.value = value
        self.position = position

    def __repr__(self):
        return "_Token(%s, %r)" % (self.kind, self.value)


def tokenize(text):
    """Split query text into tokens; raises on unknown characters."""
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise SqlSyntaxError(
                "unexpected character %r at position %d"
                % (text[position], position)
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "name" and value.upper() in _KEYWORDS:
            tokens.append(_Token("keyword", value.upper(), match.start()))
        else:
            tokens.append(_Token(kind, value, match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser producing a raw condition list."""

    def __init__(self, tokens):
        self.tokens = tokens
        self.index = 0

    def peek(self):
        return self.tokens[self.index]

    def advance(self):
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind, value=None):
        token = self.advance()
        if token.kind != kind or (value is not None and token.value != value):
            raise SqlSyntaxError(
                "expected %s%s at position %d, found %r"
                % (
                    kind,
                    " %r" % value if value is not None else "",
                    token.position,
                    token.value or "end of query",
                )
            )
        return token

    def parse(self):
        self.expect("keyword", "SELECT")
        projection = self._select_list()
        self.expect("keyword", "FROM")
        relations = [self.expect("name").value]
        while self.peek().kind == "punct" and self.peek().value == ",":
            self.advance()
            relations.append(self.expect("name").value)
        comparisons = []
        if self.peek().kind == "keyword" and self.peek().value == "WHERE":
            self.advance()
            comparisons.append(self._comparison())
            while (
                self.peek().kind == "keyword" and self.peek().value == "AND"
            ):
                self.advance()
                comparisons.append(self._comparison())
        self.expect("eof")
        return projection, relations, comparisons

    def _select_list(self):
        if self.peek().kind == "punct" and self.peek().value == "*":
            self.advance()
            return None
        attributes = [self._qualified_name()]
        while self.peek().kind == "punct" and self.peek().value == ",":
            self.advance()
            attributes.append(self._qualified_name())
        return attributes

    def _qualified_name(self):
        relation = self.expect("name").value
        self.expect("punct", ".")
        attribute = self.expect("name").value
        return "%s.%s" % (relation, attribute)

    def _comparison(self):
        left = self._operand()
        op_token = self.expect("op")
        right = self._operand()
        return left, op_token.value, right

    def _operand(self):
        token = self.advance()
        if token.kind == "number":
            value = float(token.value)
            if value.is_integer():
                value = int(value)
            return ("literal", value)
        if token.kind == "param":
            return ("param", token.value[1:])
        if token.kind == "name":
            self.expect("punct", ".")
            attribute = self.expect("name").value
            return ("attr", "%s.%s" % (token.value, attribute))
        raise SqlSyntaxError(
            "expected an operand at position %d, found %r"
            % (token.position, token.value or "end of query")
        )


_OPS = {op.value: op for op in ComparisonOp}


def _estimate_literal_selectivity(catalog, qualified, op, value):
    """Uniform-domain selectivity estimate for ``attr op literal``."""
    relation, attribute = qualified.split(".", 1)
    stats = catalog.statistics(relation).attribute(attribute)
    domain = stats.domain_size
    low = stats.min_value
    high = stats.max_value
    width = max(high - low + 1, 1)
    fraction_below = min(max((value - low) / width, 0.0), 1.0)
    if op is ComparisonOp.EQ:
        return 1.0 / domain
    if op is ComparisonOp.NE:
        return 1.0 - 1.0 / domain
    if op in (ComparisonOp.LT, ComparisonOp.LE):
        return fraction_below
    return 1.0 - fraction_below


def parse_query(sql, catalog, name=None, memory_uncertain=False,
                expected_selectivity=0.05):
    """Parse embedded SQL into a :class:`QuerySpec`.

    Host variables (``:v``) make their predicates *unbound*: the
    selectivity parameter is named ``sel_<relation>`` and the run-time
    binding supplies both the variable value and the selectivity
    (:mod:`repro.workloads.bindings` follows the same convention).
    """
    projection, relations, comparisons = _Parser(tokenize(sql)).parse()
    if len(set(relations)) != len(relations):
        raise SqlSyntaxError("duplicate relation in FROM (no self-joins)")
    for relation in relations:
        if not catalog.has_relation(relation):
            raise SqlSyntaxError("unknown relation %r" % relation)
    relation_set = set(relations)

    selections = {}
    join_predicates = []
    for left, op_text, right in comparisons:
        op = _OPS[op_text]
        if left[0] == "attr" and right[0] == "attr":
            if op is not ComparisonOp.EQ:
                raise SqlSyntaxError(
                    "only equi-joins are supported, found %r between "
                    "attributes" % op_text
                )
            _check_attribute(catalog, relation_set, left[1])
            _check_attribute(catalog, relation_set, right[1])
            join_predicates.append(JoinPredicate(left[1], right[1]))
            continue
        # Normalize so the attribute is on the left.
        if left[0] != "attr" and right[0] == "attr":
            left, right = right, left
            op = _flip(op)
        if left[0] != "attr":
            raise SqlSyntaxError(
                "a comparison needs at least one attribute operand"
            )
        qualified = left[1]
        _check_attribute(catalog, relation_set, qualified)
        relation = qualified.split(".", 1)[0]
        if relation in selections:
            raise SqlSyntaxError(
                "at most one selection predicate per relation is "
                "supported (relation %r has several)" % relation
            )
        if right[0] == "param":
            predicate = SelectionPredicate(
                Comparison(qualified, op, UserVariable(right[1])),
                selectivity_parameter="sel_%s" % relation,
                expected_selectivity=expected_selectivity,
            )
        else:
            predicate = SelectionPredicate(
                Comparison(qualified, op, right[1]),
                known_selectivity=_estimate_literal_selectivity(
                    catalog, qualified, op, right[1]
                ),
            )
        selections[relation] = predicate

    if projection is not None:
        for qualified in projection:
            _check_attribute(catalog, relation_set, qualified)
    return QuerySpec(
        relations,
        selections,
        join_predicates,
        memory_uncertain=memory_uncertain,
        name=name or "sql-query",
        projection=projection,
    )


def _check_attribute(catalog, relation_set, qualified):
    relation, attribute = qualified.split(".", 1)
    if relation not in relation_set:
        raise SqlSyntaxError(
            "attribute %r references a relation missing from FROM"
            % qualified
        )
    if attribute not in catalog.schema(relation):
        raise SqlSyntaxError("unknown attribute %r" % qualified)


def _flip(op):
    """Mirror a comparison when its operands are swapped."""
    mirror = {
        ComparisonOp.LT: ComparisonOp.GT,
        ComparisonOp.LE: ComparisonOp.GE,
        ComparisonOp.GT: ComparisonOp.LT,
        ComparisonOp.GE: ComparisonOp.LE,
        ComparisonOp.EQ: ComparisonOp.EQ,
        ComparisonOp.NE: ComparisonOp.NE,
    }
    return mirror[op]
