"""A small SQL front end for select-project-join queries.

The paper's motivating setting is "an SQL query embedded within an
application program" whose predicates contain host variables.  This
package parses exactly that class of queries::

    SELECT * FROM R1, R2
    WHERE R1.a < :v AND R1.b = R2.c AND R2.a = 17

into a :class:`~repro.optimizer.query.QuerySpec`:

* ``attr op :variable``  — an *unbound* selection predicate whose
  selectivity becomes an uncertain cost-model parameter;
* ``attr op literal``    — a selection with selectivity estimated from
  catalog statistics (uniform-domain assumption);
* ``attr = attr``        — an equi-join predicate.
"""

from repro.frontend.sql import parse_query

__all__ = ["parse_query"]
