"""Closed numeric intervals with the paper's comparison semantics.

An :class:`Interval` ``[lower, upper]`` models an uncertain quantity
whose true value is only known to lie within the bounds.  The paper
(Section 5) uses intervals for cost, selectivity, cardinality, and
available memory.  The operations implemented here follow the paper:

* addition adds both bounds;
* subtraction — used only to maintain branch-and-bound limits —
  subtracts **only the lower bound**, "since we can only be sure that
  the lower-bound cost will be used up";
* two intervals are ``LESS``/``GREATER`` only when they do not overlap,
  ``EQUAL`` only when both are the same point, and ``INCOMPARABLE``
  whenever they overlap.
"""

from repro.common.ordering import PartialOrder


class Interval:
    """A closed interval ``[lower, upper]`` over the reals.

    Instances are immutable and hashable so they can be shared freely
    across memo groups and plan nodes.
    """

    __slots__ = ("lower", "upper")

    def __init__(self, lower, upper=None):
        """Create ``[lower, upper]``; a single argument makes a point.

        Raises ``ValueError`` if ``lower > upper`` or a bound is NaN.
        """
        if upper is None:
            upper = lower
        lower = float(lower)
        upper = float(upper)
        if lower != lower or upper != upper:  # NaN check
            raise ValueError("interval bounds must not be NaN")
        if lower > upper:
            raise ValueError(
                "interval lower bound %r exceeds upper bound %r" % (lower, upper)
            )
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    def __setattr__(self, name, value):
        raise AttributeError("Interval is immutable")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def point(cls, value):
        """The degenerate interval ``[value, value]``."""
        return cls(value, value)

    @classmethod
    def zero(cls):
        """The additive identity ``[0, 0]``."""
        return cls(0.0, 0.0)

    @classmethod
    def hull(cls, intervals):
        """Smallest interval containing every interval in ``intervals``."""
        intervals = list(intervals)
        if not intervals:
            raise ValueError("hull of no intervals is undefined")
        return cls(
            min(iv.lower for iv in intervals),
            max(iv.upper for iv in intervals),
        )

    @classmethod
    def envelope_min(cls, intervals):
        """Interval of ``min`` over uncertain quantities.

        This is the paper's cost rule for a choose-plan operator: with
        alternatives ``[a, b]`` and ``[c, d]`` the chosen plan costs at
        best ``min(a, c)`` and at worst ``min(b, d)`` (the operator
        always picks its cheapest input once bindings are known).
        """
        intervals = list(intervals)
        if not intervals:
            raise ValueError("envelope_min of no intervals is undefined")
        return cls(
            min(iv.lower for iv in intervals),
            min(iv.upper for iv in intervals),
        )

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    @property
    def is_point(self):
        """True when lower == upper, i.e. the value is fully known."""
        return self.lower == self.upper

    @property
    def width(self):
        """Length of the interval (zero for points)."""
        return self.upper - self.lower

    @property
    def midpoint(self):
        """Arithmetic centre of the interval."""
        return (self.lower + self.upper) / 2.0

    def contains(self, value):
        """True when ``value`` lies within the closed interval."""
        return self.lower <= value <= self.upper

    def overlaps(self, other):
        """True when the two closed intervals share at least one value."""
        return self.lower <= other.upper and other.lower <= self.upper

    # ------------------------------------------------------------------
    # Arithmetic (all monotone, hence exact on intervals)
    # ------------------------------------------------------------------

    def __add__(self, other):
        other = _coerce(other)
        return Interval(self.lower + other.lower, self.upper + other.upper)

    __radd__ = __add__

    def subtract_lower(self, other):
        """Branch-and-bound subtraction: remove only the *lower* bound.

        Used to tighten a cost limit after committing to a subplan; the
        paper notes that only the subplan's guaranteed (lower-bound)
        cost may be deducted, which is why interval pruning is weaker
        than traditional point pruning.  The result keeps this
        interval's bounds reduced by ``other.lower`` and is clamped so
        it remains a valid interval.
        """
        other = _coerce(other)
        lower = self.lower - other.lower
        upper = self.upper - other.lower
        if lower > upper:  # cannot happen, but stay defensive
            lower = upper
        return Interval(lower, upper)

    def __mul__(self, other):
        other = _coerce(other)
        products = (
            self.lower * other.lower,
            self.lower * other.upper,
            self.upper * other.lower,
            self.upper * other.upper,
        )
        return Interval(min(products), max(products))

    __rmul__ = __mul__

    def scale(self, factor):
        """Multiply by a non-negative scalar."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return Interval(self.lower * factor, self.upper * factor)

    def clamp(self, lo, hi):
        """Intersect with ``[lo, hi]``; empty intersections collapse."""
        lower = min(max(self.lower, lo), hi)
        upper = max(min(self.upper, hi), lo)
        if lower > upper:
            lower = upper
        return Interval(lower, upper)

    def apply_monotone(self, fn, increasing=True):
        """Map a monotone scalar function over the interval.

        ``fn`` must be monotone over the interval; ``increasing``
        selects the direction, so decreasing functions swap the bounds.
        """
        lo = fn(self.lower)
        hi = fn(self.upper)
        if not increasing:
            lo, hi = hi, lo
        return Interval(lo, hi)

    # ------------------------------------------------------------------
    # Comparison (the heart of the paper)
    # ------------------------------------------------------------------

    def compare(self, other):
        """Compare per the paper: overlap means :data:`INCOMPARABLE`.

        ``EQUAL`` is returned only for identical point intervals —
        identical *wide* intervals are deliberately incomparable
        because the two underlying plans may win under different
        bindings (the prototype's "most naive", conservative choice
        described at the end of Section 3).
        """
        other = _coerce(other)
        if self.is_point and other.is_point and self.lower == other.lower:
            return PartialOrder.EQUAL
        if self.upper < other.lower:
            return PartialOrder.LESS
        if other.upper < self.lower:
            return PartialOrder.GREATER
        if self.upper == other.lower and self.is_point != other.is_point:
            # Touching at a single endpoint with one side a point: still
            # overlap, hence incomparable.
            return PartialOrder.INCOMPARABLE
        return PartialOrder.INCOMPARABLE

    def dominates(self, other):
        """True when this interval is certainly no worse than ``other``.

        Used for pruning: a plan may be discarded if an alternative's
        cost dominates it (is LESS, or both are the same point).
        """
        cmp = self.compare(other)
        return cmp in (PartialOrder.LESS, PartialOrder.EQUAL)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, Interval):
            return NotImplemented
        return self.lower == other.lower and self.upper == other.upper

    def __hash__(self):
        return hash((self.lower, self.upper))

    def __repr__(self):
        if self.is_point:
            return "Interval(%.6g)" % self.lower
        return "Interval(%.6g, %.6g)" % (self.lower, self.upper)

    def __iter__(self):
        yield self.lower
        yield self.upper


def _coerce(value):
    """Accept bare numbers anywhere an interval is expected."""
    if isinstance(value, Interval):
        return value
    return Interval.point(value)
