"""Small shared statistics helpers.

Summary statistics are needed by several layers — the service's
latency snapshot, the accuracy reports, and the benchmarks' summary
records — so the implementation lives here rather than in any one of
them.
"""


def percentile(values, fraction):
    """Linear-interpolation percentile of a non-empty value list."""
    if not values:
        raise ValueError("percentile of an empty list")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight
