"""Four-valued comparison results for partially ordered costs.

Traditional optimizers require cost comparisons to return one of
``LESS``, ``GREATER``, ``EQUAL``.  The paper (Section 3) extends the
cost abstract data type so that the comparison function may also
return ``INCOMPARABLE``, which is what induces dynamic plans.
"""

import enum


class PartialOrder(enum.Enum):
    """Result of comparing two elements of a partially ordered set."""

    LESS = "less"
    GREATER = "greater"
    EQUAL = "equal"
    INCOMPARABLE = "incomparable"

    def flipped(self):
        """Return the comparison as seen from the other operand."""
        if self is PartialOrder.LESS:
            return PartialOrder.GREATER
        if self is PartialOrder.GREATER:
            return PartialOrder.LESS
        return self

    @property
    def is_comparable(self):
        """True unless the two elements were incomparable."""
        return self is not PartialOrder.INCOMPARABLE

    @property
    def is_le(self):
        """True when the left operand is known to be no worse."""
        return self in (PartialOrder.LESS, PartialOrder.EQUAL)

    @property
    def is_ge(self):
        """True when the left operand is known to be no better."""
        return self in (PartialOrder.GREATER, PartialOrder.EQUAL)
