"""Deterministic random number utilities.

Experiments draw N = 100 random binding sets per query (paper Section
6); for reproducibility every stream is derived from an explicit seed.
"""

import hashlib
import random


def derive_seed(base_seed, *labels):
    """Derive a child seed from ``base_seed`` and a label path.

    Mixing through SHA-256 keeps streams independent: changing one
    label (say the query name) cannot shift the stream of another.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode("ascii"))
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def make_rng(base_seed, *labels):
    """A :class:`random.Random` seeded from a derived seed."""
    return random.Random(derive_seed(base_seed, *labels))
