"""Physical constants of the simulated machine and database.

The values mirror Section 6 of the paper:

* records are 512 bytes, pages are 2,048 bytes (4 records per page);
* access-module plan nodes are 128 bytes and the disk transfers
  2 MB/sec, so roughly 16,000 plan nodes can be read per second;
* reading an access module costs one seek plus catalog validation,
  modelled as a flat 0.1 seconds for either plan kind.

Random page reads (index record fetches) are charged a full
seek+rotation+transfer; sequential reads (file scans, leaf chains)
only the transfer, which is what makes unclustered index scans lose
to file scans at high selectivities — the paper's motivating example.
"""

import math

#: Bytes per stored record (paper Section 6).
RECORD_SIZE_BYTES = 512

#: Bytes per disk page (paper Section 6).
PAGE_SIZE_BYTES = 2048

#: Records that fit on one page.
RECORDS_PER_PAGE = PAGE_SIZE_BYTES // RECORD_SIZE_BYTES

#: Bytes per operator node in a serialized access module (paper Section 6).
PLAN_NODE_BYTES = 128

#: Sequential disk bandwidth (paper Section 6: 2 MB/sec).
DISK_BANDWIDTH_BYTES_PER_SEC = 2 * 1024 * 1024

#: Seconds to read one page at random (seek + rotation + transfer).
IO_TIME_PER_PAGE = 0.01

#: Seconds to read one page sequentially (transfer plus the amortized
#: short seeks of a multi-extent file).  The 10:3 random-to-sequential
#: ratio places the file-scan/index-scan crossover near selectivity
#: 0.09, above the traditional optimizer's 0.05 default — the
#: constellation of the paper's motivating example, where the static
#: plan bets on the index scan and loses badly at large selectivities.
SEQ_IO_TIME_PER_PAGE = 0.003

#: Seconds of CPU work to process one record (compare/hash/move).
CPU_COST_WEIGHT = 0.0001

#: Seconds for catalog validation plus the initial seek when activating
#: an access module; identical for static and dynamic plans because both
#: use compile-time optimization (paper Section 6 calls this ``z = 0.1``).
CATALOG_VALIDATION_SECONDS = 0.1


def pages_for_records(record_count):
    """Number of pages needed to hold ``record_count`` records.

    Always at least one page for a non-empty relation; zero records
    occupy zero pages.
    """
    if record_count <= 0:
        return 0
    return max(1, math.ceil(record_count / RECORDS_PER_PAGE))


def access_module_read_seconds(node_count):
    """Transfer time to read an access module of ``node_count`` plan nodes.

    Derived exactly as in the paper: node count times node size divided
    by disk bandwidth (about 16,000 nodes per second).
    """
    return (node_count * PLAN_NODE_BYTES) / DISK_BANDWIDTH_BYTES_PER_SEC
