"""Exception hierarchy for the repro library.

A single root exception (:class:`ReproError`) lets callers catch
anything raised by the library, while the subclasses distinguish the
major subsystems (catalog, optimizer, plan handling, execution).
"""


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class CatalogError(ReproError):
    """Raised for unknown relations/attributes or inconsistent statistics."""


class OptimizationError(ReproError):
    """Raised when the optimizer cannot produce a plan for a query."""


class PlanError(ReproError):
    """Raised for malformed plans (bad DAG structure, missing inputs, ...)."""


class ExecutionError(ReproError):
    """Raised when plan execution fails (unbound variables, missing index)."""


class BindingError(ExecutionError):
    """Raised when a run-time binding required at start-up time is missing."""


class IncomparableCostError(OptimizationError):
    """Raised when a total order is required but costs are incomparable.

    Static (traditional) optimization requires a total order of plan
    costs; if the cost model yields overlapping intervals in that mode,
    something is wrong and we fail loudly rather than pick arbitrarily.
    """


class InfeasiblePlanError(ExecutionError):
    """Raised when a stored plan no longer matches the catalogs.

    System R re-optimized queries whose compile-time plans had become
    infeasible, e.g. because an index was dropped ([CAK81], paper
    Section 2).  Activation validates access modules against the
    current catalogs; a static plan using a dropped index is
    infeasible, while a dynamic plan survives as long as each
    choose-plan retains at least one feasible alternative.
    """


class InjectedFaultError(ExecutionError):
    """Base of all faults raised by the fault-injection harness.

    ``site`` names the storage operation that faulted (``heap_read``,
    ``heap_write``, ``index_probe``, ``buffer_access``);
    ``operation_index`` is the injector's global operation counter at
    the moment of injection, which makes every fault reproducible from
    the profile and seed alone.
    """

    def __init__(self, message, site=None, operation_index=None):
        super().__init__(message)
        self.site = site
        self.operation_index = operation_index


class TransientIOError(InjectedFaultError):
    """A simulated I/O error that a retry may not see again.

    The run-time analogue of a lost disk request or a failed-over
    replica read: the service's retry policy treats these as
    recoverable and re-executes with exponential backoff.
    """


class PermanentIOError(InjectedFaultError):
    """A simulated I/O error that no retry will cure.

    Models a corrupted page or a dead device: the service fails the
    request fast with this typed error instead of burning retries.
    """


class MemoryDropError(InjectedFaultError):
    """The run-time memory grant shrank below the activated plan's.

    Raised once per configured drop stage when the injector's
    operation counter crosses the stage threshold.  Carries
    ``new_memory_pages``, the grant the rest of the query must live
    with; the service responds by re-invoking the choose-plan decision
    procedure under the updated bindings (the paper's start-up
    decision, re-run mid-flight) and restarting on the re-decided
    alternative.
    """

    def __init__(self, message, new_memory_pages, site=None,
                 operation_index=None):
        super().__init__(message, site=site, operation_index=operation_index)
        self.new_memory_pages = int(new_memory_pages)


class QueryTimeoutError(ExecutionError):
    """A query deadline expired at a cooperative cancellation point.

    The executor checks deadlines at iterator open and at every
    row/batch boundary of the drive loop, so cancellation is prompt
    (within one batch) without preemption.  The error carries the
    partial accounting of the cancelled run: ``elapsed_seconds``,
    ``rows_produced``, the ``io_snapshot`` delta charged before the
    cut, and the partial ``trace`` when the run was traced.
    """

    def __init__(self, message, deadline_seconds=None, elapsed_seconds=None):
        super().__init__(message)
        self.deadline_seconds = deadline_seconds
        self.elapsed_seconds = elapsed_seconds
        self.rows_produced = 0
        self.io_snapshot = None
        self.trace = None


class ServiceError(ExecutionError):
    """Base of the serving-tier taxonomy: typed, attributable faults.

    Every serving-tier error carries the same three attribution
    fields, so callers (and the chaos harness) can count and route
    outcomes without isinstance ladders: ``shard`` is the index of the
    service shard involved (``None`` outside a sharded deployment),
    ``signature`` the canonical query signature of the affected
    request (``None`` when the fault is not request-scoped), and
    ``reason`` a short machine-readable cause tag.
    """

    def __init__(self, message, shard=None, signature=None, reason=None):
        super().__init__(message)
        self.shard = shard
        self.signature = signature
        self.reason = reason


class ServiceOverloadError(ServiceError):
    """A request was fast-rejected by serving-tier admission control.

    Raised *synchronously* at submit time — before any optimizer or
    executor work — when a service shard's pending queue is at its
    bound or the requesting tenant is at its in-flight quota.  Typed
    and cheap by design: under overload the gateway sheds load in
    microseconds instead of letting queues grow without bound, and the
    caller can distinguish "the system is full" (retry later,
    backpressure upstream) from a request that actually failed.

    ``reason`` is ``"shard_queue_full"`` or ``"tenant_quota"``;
    ``shard`` is the target shard index; ``tenant`` the requesting
    tenant (when any); ``pending`` and ``limit`` describe the queue or
    quota that rejected the request.  ``retry_after_hint`` — when the
    gateway attaches one — is a seeded-backoff delay (seconds) the
    client should wait before resubmitting; it is a pure function of
    the gateway seed and the rejection count, so client backoff is
    reproducible in tests.
    """

    def __init__(self, message, reason=None, shard=None, tenant=None,
                 pending=None, limit=None, signature=None,
                 retry_after_hint=None):
        super().__init__(message, shard=shard, signature=signature,
                         reason=reason)
        self.tenant = tenant
        self.pending = pending
        self.limit = limit
        self.retry_after_hint = retry_after_hint


class ServiceExecutionError(ServiceError):
    """A service invocation failed after resilience was exhausted.

    Wraps the underlying fault so callers holding only a future still
    learn *which* request died: the request ``tag``, ``query_name``,
    whether the plan came from the cache (``cache_hit``), and how many
    execution ``attempts`` were made.  The original error is chained
    as ``__cause__`` and kept as ``cause``; ``reason`` defaults to the
    cause's class name.
    """

    def __init__(self, message, tag=None, query_name=None, cache_hit=None,
                 attempts=None, cause=None, shard=None, signature=None,
                 reason=None):
        if reason is None and cause is not None:
            reason = type(cause).__name__
        super().__init__(message, shard=shard, signature=signature,
                         reason=reason)
        self.tag = tag
        self.query_name = query_name
        self.cache_hit = cache_hit
        self.attempts = attempts
        self.cause = cause


class ShardDownError(ServiceError):
    """A service shard cannot serve: its worker crashed, hung, or is
    restarting.

    Raised at the shard boundary so the gateway can route the affected
    request to its degraded path (fail over to a sibling shard or
    re-optimize fresh) instead of losing it.  ``reason`` is
    ``"crashed"``, ``"hung"``, ``"killed"``, or ``"restarting"``.
    Requests failing with this error are never silently dropped: the
    gateway counts every one as either ``failed_over`` or ``failed``.
    """


class SnapshotError(ServiceError):
    """Base of plan-cache snapshot persistence failures."""


class SnapshotCorruptError(SnapshotError):
    """A snapshot file failed validation (bad JSON, checksum mismatch,
    or malformed entries) and was not restored."""


class SnapshotVersionError(SnapshotError):
    """A snapshot file's format/version is not one this build reads.

    Carries ``found`` (the file's format/version pair) and
    ``supported`` (this build's) so operators can tell a stale snapshot
    from a corrupt one.
    """

    def __init__(self, message, found=None, supported=None, **kwargs):
        super().__init__(message, **kwargs)
        self.found = found
        self.supported = supported


class MetricsError(ReproError):
    """Raised for metrics-registry misuse (e.g. writing a read-only,
    callback-backed instrument)."""
