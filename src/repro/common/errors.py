"""Exception hierarchy for the repro library.

A single root exception (:class:`ReproError`) lets callers catch
anything raised by the library, while the subclasses distinguish the
major subsystems (catalog, optimizer, plan handling, execution).
"""


class ReproError(Exception):
    """Root of the library's exception hierarchy."""


class CatalogError(ReproError):
    """Raised for unknown relations/attributes or inconsistent statistics."""


class OptimizationError(ReproError):
    """Raised when the optimizer cannot produce a plan for a query."""


class PlanError(ReproError):
    """Raised for malformed plans (bad DAG structure, missing inputs, ...)."""


class ExecutionError(ReproError):
    """Raised when plan execution fails (unbound variables, missing index)."""


class BindingError(ExecutionError):
    """Raised when a run-time binding required at start-up time is missing."""


class IncomparableCostError(OptimizationError):
    """Raised when a total order is required but costs are incomparable.

    Static (traditional) optimization requires a total order of plan
    costs; if the cost model yields overlapping intervals in that mode,
    something is wrong and we fail loudly rather than pick arbitrarily.
    """


class InfeasiblePlanError(ExecutionError):
    """Raised when a stored plan no longer matches the catalogs.

    System R re-optimized queries whose compile-time plans had become
    infeasible, e.g. because an index was dropped ([CAK81], paper
    Section 2).  Activation validates access modules against the
    current catalogs; a static plan using a dropped index is
    infeasible, while a dynamic plan survives as long as each
    choose-plan retains at least one feasible alternative.
    """
