"""Shared primitives: intervals, partial-order comparisons, units, errors.

The key concept of the paper is *incomparability of costs at
compile-time*: when cost-model parameters are unbound, costs are
intervals rather than points, and overlapping intervals cannot be
ordered.  Everything in this package exists to support that idea.
"""

from repro.common.errors import (
    CatalogError,
    ExecutionError,
    InjectedFaultError,
    MemoryDropError,
    OptimizationError,
    PermanentIOError,
    PlanError,
    QueryTimeoutError,
    ReproError,
    ServiceExecutionError,
    TransientIOError,
)
from repro.common.intervals import Interval
from repro.common.ordering import PartialOrder
from repro.common.rng import derive_seed, make_rng
from repro.common.stats import percentile
from repro.common.units import (
    CPU_COST_WEIGHT,
    DISK_BANDWIDTH_BYTES_PER_SEC,
    IO_TIME_PER_PAGE,
    PAGE_SIZE_BYTES,
    PLAN_NODE_BYTES,
    RECORD_SIZE_BYTES,
    RECORDS_PER_PAGE,
    pages_for_records,
)

__all__ = [
    "CPU_COST_WEIGHT",
    "CatalogError",
    "DISK_BANDWIDTH_BYTES_PER_SEC",
    "ExecutionError",
    "IO_TIME_PER_PAGE",
    "InjectedFaultError",
    "Interval",
    "MemoryDropError",
    "OptimizationError",
    "PAGE_SIZE_BYTES",
    "PLAN_NODE_BYTES",
    "PartialOrder",
    "PermanentIOError",
    "PlanError",
    "QueryTimeoutError",
    "RECORDS_PER_PAGE",
    "RECORD_SIZE_BYTES",
    "ReproError",
    "ServiceExecutionError",
    "TransientIOError",
    "derive_seed",
    "make_rng",
    "pages_for_records",
    "percentile",
]
