"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``demo``                 — compile, store, activate, and execute the
  motivating example end to end, narrating each step;
* ``run``                  — optimize and execute one paper query under
  any executor (``--execution-mode row|batch|compiled``) and print rows,
  I/O totals, and wall time;
* ``experiments [N]``      — regenerate the paper's evaluation
  (Table 1 and Figures 3-8) with N invocations per query (default 100);
* ``sql "<query>"``        — parse an embedded-SQL query against the
  demo catalog and print its static and dynamic plans;
* ``serve-batch [spec]``   — replay a service workload through the
  plan-cache query service and report hit rate, start-up latency
  percentiles, and speedup over optimize-per-query (``--help`` for
  flags);
* ``explain [sql]``        — print a query's optimized plan; with
  ``--analyze``, execute it and annotate every operator with
  estimated vs actual cardinality and cost plus a q-error summary;
* ``accuracy``             — replay the paper queries traced and
  report per-operator cost-model q-error distributions;
* ``chaos``                — replay the paper queries through the
  resilient query service under a named fault-injection profile and
  report retries, degradations, and result fidelity versus fault-free
  baselines (exit code 1 when any query misses its expectation).
"""

import sys

from repro import (
    Bindings,
    Database,
    execute_midquery,
    execute_plan,
    optimize_dynamic,
    optimize_static,
    paper_workload,
    parse_query,
    plan_to_text,
    populate_database,
    resolve_dynamic_plan,
)


def _parse_skew(text, command):
    """Parse a ``DECLARED:ACTUAL`` selectivity pair; None on error."""
    parts = text.split(":")
    if len(parts) == 2:
        try:
            return float(parts[0]), float(parts[1])
        except ValueError:
            pass
    print("%s: --skew must be DECLARED:ACTUAL "
          "(two floats, e.g. 0.02:0.6)" % command)
    return None


def _demo():
    workload = paper_workload(2)
    catalog, query = workload.catalog, workload.query
    print("Dynamic Query Evaluation Plans — demo")
    print("query: 2-way join, both relations filtered by host variables")
    print()

    static = optimize_static(catalog, query)
    dynamic = optimize_dynamic(catalog, query)
    print(
        "compile time: static plan %d nodes, dynamic plan %d nodes "
        "(%d choose-plan operators)"
        % (static.node_count(), dynamic.node_count(),
           dynamic.choose_plan_count())
    )
    print(plan_to_text(dynamic.plan, show_cost=False))
    print()

    database = Database(catalog)
    populate_database(database, seed=0)
    for sel_r1, sel_r2 in ((0.05, 0.5), (0.9, 0.05)):
        bindings = Bindings()
        for relation, selectivity in (("R1", sel_r1), ("R2", sel_r2)):
            domain = catalog.domain_size(relation, "a")
            bindings.bind("sel_%s" % relation, selectivity)
            bindings.bind_variable("v_%s" % relation, selectivity * domain)
        chosen, report = resolve_dynamic_plan(
            dynamic.plan, catalog, query.parameter_space, bindings
        )
        executed = execute_plan(
            chosen, database, bindings, query.parameter_space
        )
        print(
            "bindings (%.2f, %.2f): chose %s in %d decisions, "
            "%d rows, %d pages read"
            % (
                sel_r1,
                sel_r2,
                chosen.operator_name(),
                report.decisions,
                executed.row_count,
                executed.io_snapshot["pages_read"],
            )
        )
    return 0


def _run(argv):
    import argparse
    import time

    from repro.workloads.bindings import random_bindings

    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description=(
            "Optimize and execute one paper query end to end, under "
            "the record-at-a-time or the vectorized batch executor."
        ),
    )
    parser.add_argument(
        "--query",
        type=int,
        default=5,
        choices=(1, 2, 3, 4, 5),
        help="paper query number (default 5, the 10-way chain)",
    )
    parser.add_argument(
        "--execution-mode",
        choices=("row", "batch", "compiled"),
        default="row",
        help="executor: record-at-a-time iterators or vectorized "
        "batches (default row)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="records per batch in batch mode (default 1024)",
    )
    parser.add_argument(
        "--static",
        action="store_true",
        help="execute the static expected-value plan instead of the "
        "dynamic plan",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for data population and bindings (default 0)",
    )
    parser.add_argument(
        "--reopt",
        default=None,
        metavar="SPEC",
        help="mid-query re-optimization policy, e.g. 'auto', 'always', "
        "'always+restart', or 'auto:sort,hash_build' (default off)",
    )
    parser.add_argument(
        "--skew",
        default=None,
        metavar="DECLARED:ACTUAL",
        help="bind lying selectivities: declare DECLARED but make the "
        "data behave like ACTUAL, so estimates diverge only at "
        "run time (e.g. 0.02:0.6)",
    )
    args = parser.parse_args(argv)

    from repro.executor.midquery import ReoptPolicy
    from repro.workloads.bindings import skewed_bindings

    workload = paper_workload(args.query, seed=args.seed)
    optimize = optimize_static if args.static else optimize_dynamic
    plan = optimize(workload.catalog, workload.query).plan
    database = Database(workload.catalog)
    populate_database(database, seed=args.seed)
    if args.skew is not None:
        skew = _parse_skew(args.skew, "run")
        if skew is None:
            return 2
        bindings = skewed_bindings(
            workload, declared=skew[0], actual=skew[1], seed=args.seed
        )
    else:
        bindings = random_bindings(workload, seed=args.seed)
    mid_report = None
    started = time.perf_counter()
    if args.reopt is not None:
        result, mid_report = execute_midquery(
            plan,
            database,
            bindings,
            workload.query.parameter_space,
            policy=ReoptPolicy.parse(args.reopt),
            execution_mode=args.execution_mode,
            batch_size=args.batch_size,
        )
    else:
        result = execute_plan(
            plan,
            database,
            bindings,
            workload.query.parameter_space,
            execution_mode=args.execution_mode,
            batch_size=args.batch_size,
        )
    wall = time.perf_counter() - started
    io = result.io_snapshot
    print(
        "run %s (%s plan, %s mode, seed %d)"
        % (
            workload.name,
            "static" if args.static else "dynamic",
            args.execution_mode,
            args.seed,
        )
    )
    print(
        "  %d rows in %.6fs wall; pages read %d, written %d, "
        "records processed %d, index probes %d"
        % (
            result.row_count,
            wall,
            io["pages_read"],
            io["pages_written"],
            io["records_processed"],
            io["index_probes"],
        )
    )
    if result.decisions:
        print("  start-up decisions: %d" % len(result.decisions))
    if mid_report is not None:
        print(mid_report.render())
    return 0


def _serve_batch(argv):
    import argparse

    from repro.common.errors import OptimizationError, SnapshotError
    from repro.service import render_report, replay_spec
    from repro.service.replay import write_qps_report
    from repro.workloads.service import ServiceWorkloadSpec

    parser = argparse.ArgumentParser(
        prog="python -m repro serve-batch",
        description=(
            "Replay a workload through the plan-cache query service "
            "and report hit rate, start-up latency, and speedup vs "
            "optimize-per-query."
        ),
    )
    parser.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="JSON workload spec (see repro.workloads.service); "
        "omit for the built-in default mix",
    )
    parser.add_argument(
        "--invocations",
        type=int,
        default=None,
        help="override the spec's invocation count",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        help="override the spec's service thread-pool width",
    )
    parser.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="override the spec's plan-cache capacity",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the spec's workload seed",
    )
    parser.add_argument(
        "--no-execute",
        action="store_true",
        help="skip data execution; measure optimization and start-up only",
    )
    parser.add_argument(
        "--execution-mode",
        choices=("row", "batch", "compiled"),
        default=None,
        help="override the spec's executor (row, batch, or compiled)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="replay through the sharded gateway with this many "
        "plan-cache partitions (1 = single-lock service)",
    )
    parser.add_argument(
        "--tenants",
        type=int,
        default=None,
        help="assign each invocation a Zipf-distributed tenant "
        "identity from this many tenants (0 = unattributed)",
    )
    parser.add_argument(
        "--qps-report",
        metavar="PATH",
        default=None,
        help="write a JSON throughput/latency summary (qps, p50/p95/"
        "p99 request latency, hit rate, per-shard counts) to PATH",
    )
    parser.add_argument(
        "--snapshot",
        metavar="PATH",
        default=None,
        help="durable plan-cache snapshot file: warm-start from it "
        "when it exists and rewrite it on shutdown, so repeated "
        "replays skip re-optimizing the hot set",
    )
    args = parser.parse_args(argv)

    overrides = {
        "invocations": args.invocations,
        "threads": args.threads,
        "capacity": args.capacity,
        "seed": args.seed,
        "execution_mode": args.execution_mode,
        "shards": args.shards,
        "tenants": args.tenants,
    }
    overrides = {key: value for key, value in overrides.items()
                 if value is not None}
    if args.no_execute:
        overrides["execute"] = False
    try:
        if args.spec is None:
            spec = ServiceWorkloadSpec.default()
        else:
            spec = ServiceWorkloadSpec.load(args.spec)
        if overrides:
            spec = spec.replace(**overrides)
    except (OSError, ValueError, OptimizationError) as error:
        print("serve-batch: invalid workload spec: %s" % error)
        return 2
    try:
        report = replay_spec(spec, snapshot=args.snapshot)
    except SnapshotError as error:
        print("serve-batch: snapshot %s: %s" % (args.snapshot, error))
        return 2
    print(render_report(report))
    if args.snapshot is not None:
        restored = report.restore_stats
        if restored is not None:
            print(
                "snapshot: restored %d cached plans from %s "
                "(%d skipped, %d decision fallbacks, %d errors)"
                % (
                    restored.restored,
                    args.snapshot,
                    restored.skipped,
                    restored.decision_fallbacks,
                    len(restored.errors),
                )
            )
        else:
            print("snapshot: cold start (no snapshot at %s yet)" % args.snapshot)
        print("snapshot written to %s" % args.snapshot)
    if args.qps_report is not None:
        write_qps_report(report, args.qps_report)
        print("qps report written to %s" % args.qps_report)
    return 0


def _explain(argv):
    import argparse

    from repro.observability.explain import explain_analyze
    from repro.workloads.queries import Workload
    from repro.workloads.bindings import random_bindings

    parser = argparse.ArgumentParser(
        prog="python -m repro explain",
        description=(
            "Print a query's optimized plan; with --analyze, execute "
            "it under the tracer and annotate each operator with "
            "estimated vs actual cardinality and cost."
        ),
    )
    parser.add_argument(
        "sql",
        nargs="?",
        default=None,
        help="SQL text parsed against the selected paper query's "
        "catalog; omit to explain the paper query itself",
    )
    parser.add_argument(
        "--query",
        type=int,
        default=2,
        choices=(1, 2, 3, 4, 5),
        help="paper query number supplying the catalog and query "
        "(default 2)",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="execute the plan and report actual rows, cost, and "
        "q-error per operator",
    )
    parser.add_argument(
        "--static",
        action="store_true",
        help="explain the static expected-value plan instead of the "
        "dynamic plan",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for data population and bindings (default 0)",
    )
    parser.add_argument(
        "--wall",
        action="store_true",
        help="include wall-clock per-operator timings "
        "(non-deterministic; excluded by default)",
    )
    parser.add_argument(
        "--execution-mode",
        choices=("row", "batch", "compiled"),
        default="row",
        help="executor used by --analyze; cardinalities and q-errors "
        "are identical in both (default row)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="query deadline for --analyze; on expiry the partial "
        "trace collected before cancellation is rendered",
    )
    parser.add_argument(
        "--fault-profile",
        default=None,
        metavar="NAME",
        help="run --analyze with this fault-injection profile "
        "installed (see python -m repro chaos for the names)",
    )
    parser.add_argument(
        "--reopt",
        default=None,
        metavar="SPEC",
        help="run --analyze through mid-query re-optimization with "
        "this policy (e.g. 'always'); the profile annotates the "
        "final (possibly spliced) plan and the re-optimization "
        "report follows it",
    )
    args = parser.parse_args(argv)

    if args.reopt is not None and not args.analyze:
        print("explain: --reopt requires --analyze")
        return 2

    from repro.common.errors import InjectedFaultError, QueryTimeoutError
    from repro.executor.midquery import ReoptPolicy
    from repro.observability.trace import Tracer
    from repro.resilience.faults import FaultInjector, fault_profile

    workload = paper_workload(args.query, seed=args.seed)
    if args.sql is not None:
        query = parse_query(args.sql, workload.catalog, name="cli-query")
        workload = Workload(
            workload.catalog, query, workload.specs, args.seed
        )
    optimize = optimize_static if args.static else optimize_dynamic
    result = optimize(workload.catalog, workload.query)

    if not args.analyze:
        print("plan (%s):" % ("static" if args.static else "dynamic"))
        print(plan_to_text(result.plan))
        return 0

    database = Database(workload.catalog)
    populate_database(database, seed=args.seed)
    injector = None
    if args.fault_profile is not None:
        injector = database.install_fault_injector(
            FaultInjector(fault_profile(args.fault_profile), seed=args.seed)
        )
    bindings = random_bindings(workload, seed=args.seed)
    header = "EXPLAIN ANALYZE %s (%s plan, seed %d)" % (
        workload.name, "static" if args.static else "dynamic", args.seed
    )
    mid_report = None
    try:
        if args.reopt is not None:
            executed, mid_report = execute_midquery(
                result.plan,
                database,
                bindings,
                workload.query.parameter_space,
                policy=ReoptPolicy.parse(args.reopt),
                execution_mode=args.execution_mode,
                tracer=Tracer(),
                deadline=args.deadline,
            )
        else:
            executed = explain_analyze(
                result.plan,
                database,
                bindings,
                workload.query.parameter_space,
                execution_mode=args.execution_mode,
                deadline=args.deadline,
            )
    except QueryTimeoutError as error:
        print(header + " — TIMED OUT")
        io = error.io_snapshot or {}
        print(
            "  deadline %gs expired after %gs; %d rows and %d pages "
            "read before cancellation"
            % (
                error.deadline_seconds,
                error.elapsed_seconds,
                error.rows_produced,
                io.get("pages_read", 0),
            )
        )
        if error.trace is not None and error.trace.spans:
            print("partial trace:")
            print(error.trace.render(show_wall=args.wall))
        return 1
    except InjectedFaultError as error:
        print(header + " — FAILED")
        print("  %s: %s" % (type(error).__name__, error))
        print("  injector: %r" % (injector.snapshot(),))
        return 1
    print(header)
    print(executed.profile.render(show_wall=args.wall))
    if mid_report is not None:
        print(mid_report.render())
    if injector is not None:
        print("fault injector: %r" % (injector.snapshot(),))
    return 0


def _accuracy(argv):
    import argparse

    from repro.observability.accuracy import cost_model_accuracy

    parser = argparse.ArgumentParser(
        prog="python -m repro accuracy",
        description=(
            "Replay the paper queries under the tracer and report "
            "per-operator cost-model q-error distributions."
        ),
    )
    parser.add_argument(
        "--queries",
        default="1,2,3,4,5",
        help="comma-separated paper query numbers (default all five)",
    )
    parser.add_argument(
        "--invocations",
        type=int,
        default=5,
        help="binding sets replayed per query (default 5)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for data population and bindings (default 0)",
    )
    parser.add_argument(
        "--static",
        action="store_true",
        help="profile the static expected-value plans instead of the "
        "dynamic plans",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of the table",
    )
    parser.add_argument(
        "--execution-mode",
        choices=("row", "batch", "compiled"),
        default="row",
        help="executor for the traced replay (default row)",
    )
    args = parser.parse_args(argv)

    try:
        numbers = tuple(
            int(part) for part in args.queries.split(",") if part.strip()
        )
    except ValueError:
        print("accuracy: --queries must be comma-separated integers")
        return 2
    if not numbers or any(n not in (1, 2, 3, 4, 5) for n in numbers):
        print("accuracy: query numbers must be between 1 and 5")
        return 2

    report = cost_model_accuracy(
        query_numbers=numbers,
        invocations=args.invocations,
        seed=args.seed,
        mode="static" if args.static else "dynamic",
        execution_mode=args.execution_mode,
    )
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0


def _chaos_service(scenario, args):
    from repro.common.errors import ExecutionError
    from repro.resilience.chaos import run_service_chaos

    try:
        report = run_service_chaos(
            scenario,
            seed=args.seed,
            shards=args.shards,
            requests=args.requests,
            inject_at=args.inject_at,
            heal_at=args.heal_at,
            execution_mode=args.execution_mode,
        )
    except (ExecutionError, ValueError) as error:
        print("chaos: %s" % error)
        return 2
    if args.output is not None:
        with open(args.output, "w") as handle:
            handle.write(report.to_json())
            handle.write("\n")
    print(report.to_json() if args.json else report.render())
    return 0 if report.passed else 1


def _chaos(argv):
    import argparse

    from repro.common.errors import ExecutionError
    from repro.resilience.chaos import run_chaos
    from repro.resilience.faults import FAULT_PROFILES

    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description=(
            "Replay the paper queries through the resilient query "
            "service under a named fault-injection profile and check "
            "outcomes against fault-free baselines."
        ),
    )
    parser.add_argument(
        "--profile",
        default="transient-and-drop",
        help="fault profile to inject (one of: %s; default "
        "transient-and-drop)" % ", ".join(sorted(FAULT_PROFILES)),
    )
    parser.add_argument(
        "--queries",
        default="1,2,3,4,5",
        help="comma-separated paper query numbers (default all five)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for data, bindings, and fault injection (default 0)",
    )
    parser.add_argument(
        "--execution-mode",
        choices=("row", "batch", "compiled"),
        default="row",
        help="executor the service runs under faults (default row)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the deterministic JSON report instead of the table",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write the JSON report to this file",
    )
    parser.add_argument(
        "--reopt",
        default=None,
        metavar="SPEC",
        help="run the faulty service through mid-query "
        "re-optimization with this policy (e.g. 'always'); the "
        "baseline stays plain, so rows_match also checks that "
        "re-optimization preserves results",
    )
    parser.add_argument(
        "--skew",
        default=None,
        metavar="DECLARED:ACTUAL",
        help="replace random bindings with lying selectivities "
        "(e.g. 0.02:0.6) so re-decisions actually switch plans",
    )
    scenario_group = parser.add_mutually_exclusive_group()
    scenario_group.add_argument(
        "--kill-shard",
        action="store_true",
        help="service-tier scenario: kill a shard worker mid-replay "
        "and assert failover + supervised restart preserve results",
    )
    scenario_group.add_argument(
        "--hang-shard",
        action="store_true",
        help="service-tier scenario: wedge a shard worker mid-request "
        "and assert the hung request completes via failover after the "
        "supervisor escalates suspect -> down -> restart",
    )
    scenario_group.add_argument(
        "--slow-shard",
        action="store_true",
        help="service-tier scenario: a shard reports stalled serves; "
        "the supervisor marks it suspect and recovers it without a "
        "restart",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=3,
        help="gateway shard count for the service-tier scenarios "
        "(default 3)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=36,
        help="traffic length for the service-tier scenarios "
        "(default 36)",
    )
    parser.add_argument(
        "--inject-at",
        type=int,
        default=10,
        help="request index at which the shard fault fires "
        "(default 10)",
    )
    parser.add_argument(
        "--heal-at",
        type=int,
        default=None,
        help="request index at which the supervisor sweeps "
        "(default inject-at + 6)",
    )
    args = parser.parse_args(argv)

    scenario = None
    if args.kill_shard:
        scenario = "kill-shard"
    elif args.hang_shard:
        scenario = "hang-shard"
    elif args.slow_shard:
        scenario = "slow-shard"
    if scenario is not None:
        return _chaos_service(scenario, args)

    try:
        numbers = tuple(
            int(part) for part in args.queries.split(",") if part.strip()
        )
    except ValueError:
        print("chaos: --queries must be comma-separated integers")
        return 2
    if not numbers or any(n not in (1, 2, 3, 4, 5) for n in numbers):
        print("chaos: query numbers must be between 1 and 5")
        return 2
    skew = None
    if args.skew is not None:
        skew = _parse_skew(args.skew, "chaos")
        if skew is None:
            return 2

    try:
        report = run_chaos(
            args.profile,
            query_numbers=numbers,
            seed=args.seed,
            execution_mode=args.execution_mode,
            reopt=args.reopt,
            skew=skew,
        )
    except ExecutionError as error:
        print("chaos: %s" % error)
        return 2
    if args.output is not None:
        with open(args.output, "w") as handle:
            handle.write(report.to_json())
            handle.write("\n")
    print(report.to_json() if args.json else report.render())
    return 0 if report.passed else 1


def _experiments(argv):
    from repro.experiments.runner import main as run_experiments

    return run_experiments(argv)


def _sql(argv):
    if not argv:
        print("usage: python -m repro sql \"SELECT * FROM R1 ...\"")
        return 2
    workload = paper_workload(2)
    query = parse_query(argv[0], workload.catalog, name="cli-query")
    print("parsed: %r" % query)
    static = optimize_static(workload.catalog, query)
    print("static plan:")
    print(plan_to_text(static.plan))
    dynamic = optimize_dynamic(workload.catalog, query)
    print("dynamic plan:")
    print(plan_to_text(dynamic.plan))
    return 0


def main(argv=None):
    """Dispatch a CLI command; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    command = argv[0] if argv else "demo"
    if command == "demo":
        return _demo()
    if command == "run":
        return _run(argv[1:])
    if command == "experiments":
        return _experiments(argv[1:])
    if command == "sql":
        return _sql(argv[1:])
    if command == "serve-batch":
        return _serve_batch(argv[1:])
    if command == "explain":
        return _explain(argv[1:])
    if command == "accuracy":
        return _accuracy(argv[1:])
    if command == "chaos":
        return _chaos(argv[1:])
    print(__doc__)
    return 2


if __name__ == "__main__":
    sys.exit(main())
