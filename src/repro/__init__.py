"""repro — Dynamic Query Evaluation Plans.

A full reproduction of Cole & Graefe's dynamic-plan query optimizer
(SIGMOD 1994; the construction-and-evaluation successor of Graefe &
Ward's SIGMOD 1989 "Dynamic Query Evaluation Plans"): a Volcano-style
optimizer extended with interval costs that may be *incomparable* at
compile time, producing dynamic plans whose choose-plan operators pick
the cheapest alternative at start-up time.

Quickstart::

    from repro import (
        paper_workload, optimize_static, optimize_dynamic,
        resolve_dynamic_plan, random_bindings,
    )

    w = paper_workload(2)                # 2-way join, 2 unbound predicates
    dynamic = optimize_dynamic(w.catalog, w.query)
    bindings = random_bindings(w, seed=1)
    chosen, report = resolve_dynamic_plan(
        dynamic.plan, w.catalog, w.query.parameter_space, bindings)

See ``examples/`` for runnable scenarios, ``benchmarks/`` for the
reproduction of every figure of the paper's evaluation, and DESIGN.md
for the system inventory.
"""

from repro.algebra import (
    ChoosePlan,
    Comparison,
    ComparisonOp,
    FileScan,
    Filter,
    GetSet,
    HashJoin,
    Join,
    JoinPredicate,
    Literal,
    Select,
    SelectionPredicate,
    UserVariable,
    plan_to_text,
)
from repro.catalog import (
    Catalog,
    IndexInfo,
    build_synthetic_catalog,
    default_relation_specs,
    populate_database,
)
from repro.common import Interval, PartialOrder
from repro.cost import Bindings, CostModel, ParameterSpace, Valuation
from repro.frontend import parse_query
from repro.executor import (
    AccessModule,
    MidQueryReport,
    ReoptPolicy,
    ShrinkingAccessModule,
    activate_plan,
    execute_midquery,
    execute_plan,
    resolve_dynamic_plan,
)
from repro.optimizer import (
    OptimizerConfig,
    OptimizerMode,
    QuerySpec,
    SearchEngine,
    canonical_signature,
    optimize_dynamic,
    optimize_exhaustive,
    optimize_runtime,
    optimize_static,
    signature_digest,
)
from repro.observability import MetricsRegistry, Tracer
from repro.observability.accuracy import cost_model_accuracy
from repro.observability.explain import explain_analyze
from repro.service import (
    PlanCache,
    QueryService,
    ServiceRequest,
    replay_spec,
)
from repro.scenarios import (
    DynamicPlanScenario,
    RunTimeOptimizationScenario,
    StaticPlanScenario,
)
from repro.storage import Database
from repro.workloads import (
    binding_series,
    make_join_workload,
    paper_workload,
    random_bindings,
    skewed_bindings,
)

__version__ = "1.0.0"

__all__ = [
    "AccessModule",
    "Bindings",
    "Catalog",
    "ChoosePlan",
    "Comparison",
    "ComparisonOp",
    "CostModel",
    "Database",
    "DynamicPlanScenario",
    "FileScan",
    "Filter",
    "GetSet",
    "HashJoin",
    "IndexInfo",
    "Interval",
    "Join",
    "JoinPredicate",
    "Literal",
    "MetricsRegistry",
    "MidQueryReport",
    "OptimizerConfig",
    "OptimizerMode",
    "ParameterSpace",
    "PartialOrder",
    "PlanCache",
    "QueryService",
    "QuerySpec",
    "ReoptPolicy",
    "RunTimeOptimizationScenario",
    "SearchEngine",
    "Select",
    "SelectionPredicate",
    "ServiceRequest",
    "ShrinkingAccessModule",
    "StaticPlanScenario",
    "Tracer",
    "UserVariable",
    "Valuation",
    "activate_plan",
    "binding_series",
    "build_synthetic_catalog",
    "canonical_signature",
    "cost_model_accuracy",
    "default_relation_specs",
    "execute_midquery",
    "execute_plan",
    "explain_analyze",
    "make_join_workload",
    "optimize_dynamic",
    "optimize_exhaustive",
    "optimize_runtime",
    "optimize_static",
    "paper_workload",
    "parse_query",
    "plan_to_text",
    "populate_database",
    "random_bindings",
    "replay_spec",
    "resolve_dynamic_plan",
    "signature_digest",
    "skewed_bindings",
]
