"""``EXPLAIN ANALYZE``: estimated vs actual figures per operator.

:func:`explain_analyze` executes a plan under a
:class:`~repro.observability.trace.Tracer` and pairs every operator
span with the cost model's prediction for that very node *under the
run-time valuation* — the same re-evaluated cost functions the
choose-plan decision procedures use at start-up time.  The rendered
tree therefore shows exactly how far the quantities the paper's whole
argument rests on land from what the executor actually charges:

* **cardinality**: estimated output rows vs rows the operator
  produced, summarized as a q-error (symmetric ratio, 1.0 = perfect);
* **cost**: estimated (inclusive) seconds vs the simulated seconds of
  the operator's subtree, folded from the I/O counters with the same
  machine constants as :meth:`IOStatistics.estimated_seconds
  <repro.storage.iostats.IOStatistics.estimated_seconds>`.

Renderings are deterministic for a fixed workload seed (no wall-clock
values unless explicitly requested), which is what the golden-file
tests pin down.
"""

from repro.observability.trace import Tracer, q_error


class OperatorProfile:
    """One operator's estimated-vs-actual record."""

    __slots__ = (
        "span",
        "depth",
        "estimated_rows",
        "estimated_cost",
        "actual_rows",
        "actual_seconds",
    )

    def __init__(self, span, depth, estimated_rows, estimated_cost):
        self.span = span
        self.depth = depth
        #: Estimated output cardinality (an Interval, or None when the
        #: cost model cannot evaluate the node under this valuation).
        self.estimated_rows = estimated_rows
        #: Estimated inclusive cost interval in seconds, or None.
        self.estimated_cost = estimated_cost
        self.actual_rows = span.rows
        #: Inclusive simulated seconds, folded from the span's counters.
        self.actual_seconds = span.simulated_seconds()

    @property
    def cardinality_q_error(self):
        """q-error of the cardinality estimate (None when unestimated)."""
        if self.estimated_rows is None:
            return None
        return q_error(self.estimated_rows.midpoint, self.actual_rows)

    @property
    def cost_ratio(self):
        """Estimated-over-actual cost ratio as a q-error (or None)."""
        if self.estimated_cost is None:
            return None
        return q_error(
            self.estimated_cost.midpoint, self.actual_seconds, floor=1e-9
        )

    def __repr__(self):
        return "OperatorProfile(%s, est=%r, act=%d)" % (
            self.span.label(),
            self.estimated_rows,
            self.actual_rows,
        )


class ExecutionProfile:
    """Per-operator profiles of one traced execution, renderable."""

    def __init__(self, operators, trace):
        self.operators = list(operators)
        self.trace = trace

    def cardinality_q_errors(self):
        """All defined per-operator cardinality q-errors."""
        return [
            profile.cardinality_q_error
            for profile in self.operators
            if profile.cardinality_q_error is not None
        ]

    def max_q_error(self):
        """Worst cardinality q-error across operators (1.0 when empty)."""
        errors = self.cardinality_q_errors()
        return max(errors) if errors else 1.0

    def mean_q_error(self):
        """Mean cardinality q-error across operators (1.0 when empty)."""
        errors = self.cardinality_q_errors()
        return sum(errors) / len(errors) if errors else 1.0

    def summary(self):
        """Aggregate figures as a plain dict."""
        return {
            "operators": len(self.operators),
            "max_q_error": self.max_q_error(),
            "mean_q_error": self.mean_q_error(),
        }

    def render(self, show_wall=False):
        """The annotated operator tree plus a q-error summary."""
        lines = []
        for profile in self.operators:
            span = profile.span
            line = "%s%s" % ("  " * profile.depth, span.label())
            if profile.estimated_rows is not None:
                line += "  rows est=%s act=%d q=%.2f" % (
                    _fmt_interval(profile.estimated_rows),
                    profile.actual_rows,
                    profile.cardinality_q_error,
                )
            else:
                line += "  rows est=? act=%d" % profile.actual_rows
            if profile.estimated_cost is not None:
                line += "  cost est=%s act=%.6g" % (
                    _fmt_interval(profile.estimated_cost),
                    profile.actual_seconds,
                )
            else:
                line += "  cost est=? act=%.6g" % profile.actual_seconds
            line += "  pages=%d" % span.total_pages
            if show_wall:
                line += " wall=%.6fs" % span.wall_seconds
            lines.append(line)
        lines.append("")
        lines.append(
            "q-error (cardinality): max=%.2f mean=%.2f over %d operators"
            % (self.max_q_error(), self.mean_q_error(), len(self.operators))
        )
        return "\n".join(lines)

    def __repr__(self):
        return "ExecutionProfile(%d operators, max q=%.2f)" % (
            len(self.operators),
            self.max_q_error(),
        )


def build_profile(trace, cost_model):
    """Pair every span of a trace with the cost model's estimates.

    ``cost_model`` must carry the *run-time* valuation of the
    execution (the engine's lazily built
    :attr:`~repro.executor.engine.ExecutionContext.cost_model`), so
    estimates are the exact quantities the start-up decision
    procedures computed.  Nodes the model cannot evaluate under this
    valuation (unbound parameters, foreign operators) profile with
    ``None`` estimates rather than failing the execution.
    """
    operators = []
    for span, depth in trace.walk():
        try:
            result = cost_model.evaluate(span.plan)
            estimated_rows = result.cardinality
            estimated_cost = result.cost
        except Exception:
            estimated_rows = None
            estimated_cost = None
        operators.append(
            OperatorProfile(span, depth, estimated_rows, estimated_cost)
        )
    return ExecutionProfile(operators, trace)


def explain_analyze(plan, database, bindings=None, parameter_space=None,
                    use_buffer_pool=False, execution_mode="row",
                    batch_size=None, deadline=None):
    """Execute ``plan`` under a fresh tracer; returns the result.

    The returned :class:`~repro.executor.engine.ExecutionResult`
    carries ``trace`` and ``profile``; render the latter for the
    classic ``EXPLAIN ANALYZE`` view.  Dynamic plans work directly —
    the choose-plan operators resolve at open time and the trace shows
    the chosen alternative beneath them.  ``execution_mode`` selects
    the engine (``"row"`` or ``"batch"``); spans report exact row
    counts either way, so the rendered cardinalities and q-errors are
    identical across modes.

    ``deadline`` (seconds or a prebuilt deadline) arms cooperative
    cancellation; on expiry the raised
    :class:`~repro.common.errors.QueryTimeoutError` still carries the
    *partial* trace, so a timed-out query remains explainable.
    """
    from repro.executor.engine import execute_plan

    return execute_plan(
        plan,
        database,
        bindings,
        parameter_space,
        use_buffer_pool=use_buffer_pool,
        tracer=Tracer(),
        execution_mode=execution_mode,
        batch_size=batch_size,
        deadline=deadline,
    )


def _fmt_interval(interval):
    """Compact deterministic rendering of an interval annotation."""
    if interval.is_point:
        return "%.6g" % interval.lower
    return "[%.6g, %.6g]" % (interval.lower, interval.upper)
