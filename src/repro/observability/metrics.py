"""A thread-safe metrics registry: counters, gauges, histograms.

The registry is the service-level half of the observability layer:
:class:`~repro.service.service.QueryService` and
:class:`~repro.service.cache.PlanCache` record cache hits and misses,
start-up decision latencies, and staleness-driven re-optimizations
here, and operators can scrape the state as JSON
(:meth:`MetricsRegistry.to_json`) or Prometheus text exposition format
(:meth:`MetricsRegistry.to_prometheus`).

Exactness over sampling: every instrument updates under a lock, so
concurrent updates are never lost — the property the 8-thread
concurrency test asserts by summing per-thread deltas against the
registry totals.  Instruments are cheap (one lock round-trip and a few
float ops per update) but not free; subsystems accept ``metrics=None``
and skip instrumentation entirely when no registry is attached.

Two wiring styles keep the hot path fast:

* **push** instruments are updated inline (``inc``/``observe``) where
  no pre-existing counter tracks the quantity;
* **pull** instruments take a ``callback`` and read an existing,
  already-locked internal counter at scrape time — mirroring, say, the
  plan cache's :class:`~repro.service.cache.CacheStatistics` into the
  registry at zero per-request cost.  Callback-backed instruments are
  read-only; pushing to one raises.
"""

import json
import re
import threading
from bisect import bisect_left

from repro.common.errors import MetricsError

_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default latency buckets (seconds), dense in the sub-millisecond
#: range where start-up decisions live.
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


def _check_name(name):
    if not _NAME_PATTERN.match(name):
        raise ValueError("invalid metric name %r" % name)
    return name


class Counter:
    """A monotonically increasing counter (push, or pull via callback)."""

    kind = "counter"

    __slots__ = ("name", "help", "_value", "_lock", "_callback")

    def __init__(self, name, help="", callback=None):
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()
        self._callback = callback

    def inc(self, amount=1):
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counter increments must be non-negative")
        if self._callback is not None:
            raise MetricsError(
                "callback-backed counter %s is read-only" % self.name
            )
        with self._lock:
            self._value += amount

    @property
    def value(self):
        """Current total."""
        if self._callback is not None:
            return self._callback()
        with self._lock:
            return self._value

    def snapshot(self):
        """Plain-data view of the instrument."""
        return {"type": self.kind, "value": self.value}

    def __repr__(self):
        return "Counter(%s=%g)" % (self.name, self.value)


class Gauge:
    """A value that can go up and down (e.g. in-flight requests)."""

    kind = "gauge"

    __slots__ = ("name", "help", "_value", "_lock", "_callback")

    def __init__(self, name, help="", callback=None):
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()
        self._callback = callback

    def _writable(self):
        if self._callback is not None:
            raise MetricsError(
                "callback-backed gauge %s is read-only" % self.name
            )

    def set(self, value):
        """Replace the gauge's value."""
        self._writable()
        with self._lock:
            self._value = float(value)

    def inc(self, amount=1):
        """Add ``amount`` (may be negative)."""
        self._writable()
        with self._lock:
            self._value += amount

    def dec(self, amount=1):
        """Subtract ``amount``."""
        self._writable()
        with self._lock:
            self._value -= amount

    @property
    def value(self):
        """Current value."""
        if self._callback is not None:
            return self._callback()
        with self._lock:
            return self._value

    def snapshot(self):
        """Plain-data view of the instrument."""
        return {"type": self.kind, "value": self.value}

    def __repr__(self):
        return "Gauge(%s=%g)" % (self.name, self.value)


class Histogram:
    """A fixed-bucket histogram of observations (Prometheus-style).

    Buckets are cumulative upper bounds; every observation also feeds
    ``sum`` and ``count``, so means are exact and percentiles are
    bucket-resolution approximations.
    """

    kind = "histogram"

    __slots__ = ("name", "help", "bounds", "_bucket_counts", "_sum",
                 "_count", "_lock")

    def __init__(self, name, help="", buckets=DEFAULT_LATENCY_BUCKETS):
        self.name = _check_name(name)
        self.help = help
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value):
        """Record one observation."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self):
        """Number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self):
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    @property
    def mean(self):
        """Mean observation (0.0 when empty)."""
        with self._lock:
            if self._count == 0:
                return 0.0
            return self._sum / self._count

    def snapshot(self):
        """Cumulative bucket counts plus sum/count, as plain data."""
        with self._lock:
            counts = list(self._bucket_counts)
            total = self._count
            observed_sum = self._sum
        cumulative = {}
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            cumulative["%g" % bound] = running
        cumulative["+Inf"] = total
        return {
            "type": self.kind,
            "count": total,
            "sum": observed_sum,
            "buckets": cumulative,
        }

    def __repr__(self):
        return "Histogram(%s, count=%d)" % (self.name, self.count)


class MetricsRegistry:
    """A named collection of instruments with get-or-create semantics.

    Instruments are created once and shared: asking twice for the same
    name returns the same object, and asking for an existing name with
    a different instrument kind raises ``ValueError`` (silent kind
    confusion would corrupt dashboards).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics = {}
        self._order = []

    def _get_or_create(self, factory, kind, name, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ValueError(
                        "metric %r already registered as a %s"
                        % (name, existing.kind)
                    )
                return existing
            metric = factory(name, **kwargs)
            self._metrics[name] = metric
            self._order.append(name)
            return metric

    def counter(self, name, help="", callback=None):
        """Get or create a :class:`Counter` (pull-style with callback).

        ``callback`` only applies when the instrument is created here;
        asking again for an existing name returns it unchanged.
        """
        return self._get_or_create(
            Counter, "counter", name, help=help, callback=callback
        )

    def gauge(self, name, help="", callback=None):
        """Get or create a :class:`Gauge` (pull-style with callback)."""
        return self._get_or_create(
            Gauge, "gauge", name, help=help, callback=callback
        )

    def histogram(self, name, help="", buckets=DEFAULT_LATENCY_BUCKETS):
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(
            Histogram, "histogram", name, help=help, buckets=buckets
        )

    def get(self, name):
        """The instrument registered under ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self):
        """All instruments as one plain dict, in registration order."""
        with self._lock:
            ordered = [(name, self._metrics[name]) for name in self._order]
        return {name: metric.snapshot() for name, metric in ordered}

    def to_json(self, indent=None):
        """The snapshot serialized as a JSON object string."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)

    def to_prometheus(self):
        """The registry in Prometheus text exposition format."""
        with self._lock:
            ordered = [(name, self._metrics[name]) for name in self._order]
        lines = []
        for name, metric in ordered:
            if metric.help:
                lines.append("# HELP %s %s" % (name, metric.help))
            lines.append("# TYPE %s %s" % (name, metric.kind))
            data = metric.snapshot()
            if metric.kind == "histogram":
                for bound, count in data["buckets"].items():
                    lines.append('%s_bucket{le="%s"} %d' % (name, bound, count))
                lines.append("%s_sum %.10g" % (name, data["sum"]))
                lines.append("%s_count %d" % (name, data["count"]))
            else:
                lines.append("%s %.10g" % (name, data["value"]))
        return "\n".join(lines) + "\n"

    def __len__(self):
        with self._lock:
            return len(self._metrics)

    def __contains__(self, name):
        return self.get(name) is not None

    def __repr__(self):
        return "MetricsRegistry(%d instruments)" % len(self)
