"""Structured execution tracing for the Volcano executor.

A :class:`Tracer` collects two kinds of spans:

* :class:`OperatorSpan` — one per iterator instance in an executed
  plan tree.  The span accumulates the operator's *inclusive* work:
  rows produced, simulated I/O charged to the shared
  :class:`~repro.storage.iostats.IOStatistics` while the operator's
  stream was advancing (which covers its whole subtree, exactly like
  the cost model's inclusive cost formulas), and wall-clock seconds.
  Exclusive figures are derived by subtracting child spans.
* :class:`PhaseSpan` — one per named phase (optimizer search stages,
  start-up decision passes), with wall-clock seconds and free-form
  metadata counters.

Observer effect: tracing must never change what a plan computes or
charges.  Spans only *read* the I/O counters (snapshot deltas around
each generator advance) and never write to them; the differential
tests in ``tests/test_observability_differential.py`` hold this
invariant across all five paper queries.

Disabled cost: execution contexts carry ``tracer=None`` by default.
The only instrumentation on that path is one ``is None`` test per
iterator *open* (not per record), so tracing adds no measurable
overhead when off — asserted by ``benchmarks/bench_service_cache.py``.
"""

from contextlib import contextmanager, nullcontext
from time import perf_counter


def q_error(estimate, actual, floor=1.0):
    """The q-error of a cardinality estimate: ``max(est/act, act/est)``.

    Both quantities are floored (at one row by default) so empty and
    near-empty results produce finite, comparable errors; a perfect
    estimate scores 1.0 and the measure is symmetric in over- and
    under-estimation, following the standard definition of Moerkotte
    et al. and its use in adaptive-cost-model work.
    """
    est = max(float(estimate), floor)
    act = max(float(actual), floor)
    if est >= act:
        return est / act
    return act / est


class OperatorSpan:
    """Inclusive accounting of one operator instance in one execution."""

    __slots__ = (
        "index",
        "parent_index",
        "plan",
        "operator",
        "detail",
        "rows",
        "wall_seconds",
        "pages_read",
        "pages_written",
        "records_processed",
        "index_probes",
        "children",
        "exhausted",
    )

    def __init__(self, index, parent_index, plan):
        self.index = index
        self.parent_index = parent_index
        self.plan = plan
        self.operator = plan.operator_name()
        self.detail = _operator_detail(plan)
        self.rows = 0
        self.wall_seconds = 0.0
        self.pages_read = 0
        self.pages_written = 0
        self.records_processed = 0
        self.index_probes = 0
        #: Indices of child spans, in open order.
        self.children = []
        #: True once the operator's stream raised ``StopIteration``.
        self.exhausted = False

    @property
    def total_pages(self):
        """Pages read plus written inside this operator's subtree."""
        return self.pages_read + self.pages_written

    def simulated_seconds(self):
        """Inclusive simulated cost, folded like ``IOStatistics``."""
        from repro.common.units import CPU_COST_WEIGHT, IO_TIME_PER_PAGE

        return (
            self.total_pages * IO_TIME_PER_PAGE
            + self.records_processed * CPU_COST_WEIGHT
        )

    def label(self):
        """Operator name plus its node-local detail."""
        if self.detail:
            return "%s %s" % (self.operator, self.detail)
        return self.operator

    def __repr__(self):
        return "OperatorSpan(%s, rows=%d, pages=%d)" % (
            self.label(),
            self.rows,
            self.total_pages,
        )


class PhaseSpan:
    """Wall-clock timing of one named phase, with metadata counters."""

    __slots__ = ("name", "seconds", "meta")

    def __init__(self, name, meta=None):
        self.name = name
        self.seconds = 0.0
        self.meta = dict(meta or {})

    def __repr__(self):
        return "PhaseSpan(%s, %.6fs)" % (self.name, self.seconds)


class TraceEvent:
    """One discrete, levelled occurrence noted during a traced activity.

    Events record things spans cannot: a decision-procedure
    compilation falling back to the interpreter, a retry after an
    injected fault, a mid-run plan degradation.  ``level`` is
    ``"info"`` or ``"warn"``; ``meta`` carries free-form details.
    """

    __slots__ = ("name", "level", "meta")

    def __init__(self, name, level="info", meta=None):
        self.name = name
        self.level = level
        self.meta = dict(meta or {})

    def __repr__(self):
        return "TraceEvent(%s, %s)" % (self.name, self.level)


class _TracedStreamBase:
    """Iterator wrapper accumulating span counters per advance.

    Around every ``next`` on the underlying generator the wrapper
    snapshots the shared I/O counters and the clock, and makes its
    span the tracer's *current* span so operators opened inside the
    advance (children pulled for the first time, choose-plan's chosen
    alternative) link to it as their parent.  Subclasses differ only
    in how an advance's item contributes to the span's row count.
    """

    __slots__ = ("_tracer", "_span", "_stream", "_io")

    def __init__(self, tracer, span, stream, io_stats):
        self._tracer = tracer
        self._span = span
        self._stream = stream
        self._io = io_stats

    def __iter__(self):
        return self

    def _advance(self):
        tracer = self._tracer
        span = self._span
        io = self._io
        previous = tracer._current
        tracer._current = span
        pages_read = io.pages_read
        pages_written = io.pages_written
        records = io.records_processed
        probes = io.index_probes
        started = perf_counter()
        try:
            item = next(self._stream)
        except StopIteration:
            span.exhausted = True
            raise
        finally:
            span.wall_seconds += perf_counter() - started
            span.pages_read += io.pages_read - pages_read
            span.pages_written += io.pages_written - pages_written
            span.records_processed += io.records_processed - records
            span.index_probes += io.index_probes - probes
            tracer._current = previous
        return item


class _TracedStream(_TracedStreamBase):
    """Record-at-a-time traced stream: one row per advance."""

    __slots__ = ()

    def __next__(self):
        record = self._advance()
        self._span.rows += 1
        return record


class _TracedBatchStream(_TracedStreamBase):
    """Batch-at-a-time traced stream: one advance covers a whole batch.

    Spans still report *exact* record counts — rows advance by the
    batch's length — so ``explain --analyze`` cardinalities and
    q-error reports are identical across execution modes; only the
    per-advance wall-clock granularity differs.
    """

    __slots__ = ()

    def __next__(self):
        batch = self._advance()
        self._span.rows += len(batch)
        return batch


class Tracer:
    """Collects operator and phase spans for one traced activity.

    A tracer is single-execution, single-thread state (like an
    :class:`~repro.executor.engine.ExecutionContext`); concurrent
    executions each get their own tracer.
    """

    def __init__(self):
        self.spans = []
        self.phases = []
        self.events = []
        self._current = None

    # ------------------------------------------------------------------
    # Operator spans (driven by repro.executor.iterators)
    # ------------------------------------------------------------------

    def begin_operator(self, plan):
        """Open a span for a plan node under the current parent."""
        parent = self._current
        span = OperatorSpan(
            len(self.spans),
            parent.index if parent is not None else None,
            plan,
        )
        self.spans.append(span)
        if parent is not None:
            parent.children.append(span.index)
        return span

    def instrument(self, iterator):
        """Open a span for an iterator and wrap its record stream.

        Called by :meth:`PlanIterator.open
        <repro.executor.iterators.PlanIterator>` exactly once per
        iterator.  The ``_produce`` call itself runs under the span
        too, because several operators (merge join, choose-plan) do
        real work — including opening children — while producing
        their stream.
        """
        span, stream, io = self._windowed_produce(iterator, "_produce")
        return _TracedStream(self, span, stream, io)

    def instrument_batches(self, iterator):
        """Like :meth:`instrument` for a vectorized batch iterator.

        Called by :meth:`BatchPlanIterator.open
        <repro.executor.vectorized.BatchPlanIterator>`; the span's row
        count advances by each batch's length, so traces report the
        same exact cardinalities as row-mode execution.
        """
        span, stream, io = self._windowed_produce(iterator, "_produce_batches")
        return _TracedBatchStream(self, span, stream, io)

    def _windowed_produce(self, iterator, produce_name):
        """Open a span and run the iterator's produce step under it."""
        span = self.begin_operator(iterator.plan)
        io = iterator.io_stats
        previous = self._current
        self._current = span
        pages_read = io.pages_read
        pages_written = io.pages_written
        records = io.records_processed
        probes = io.index_probes
        started = perf_counter()
        try:
            stream = getattr(iterator, produce_name)()
        finally:
            span.wall_seconds += perf_counter() - started
            span.pages_read += io.pages_read - pages_read
            span.pages_written += io.pages_written - pages_written
            span.records_processed += io.records_processed - records
            span.index_probes += io.index_probes - probes
            self._current = previous
        return span, stream, io

    # ------------------------------------------------------------------
    # Phase spans (driven by the optimizer and the service)
    # ------------------------------------------------------------------

    @contextmanager
    def phase(self, name, **meta):
        """Context manager timing one named phase."""
        span = PhaseSpan(name, meta)
        started = perf_counter()
        try:
            yield span
        finally:
            span.seconds = perf_counter() - started
            self.phases.append(span)

    def phase_seconds(self, name):
        """Total seconds across all phases with ``name``."""
        return sum(span.seconds for span in self.phases if span.name == name)

    # ------------------------------------------------------------------
    # Events (driven by the service's resilience paths)
    # ------------------------------------------------------------------

    def event(self, name, level="info", **meta):
        """Record one discrete :class:`TraceEvent`; returns it."""
        event = TraceEvent(name, level, meta)
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def trace(self):
        """The collected operator spans as an :class:`ExecutionTrace`."""
        return ExecutionTrace(self.spans, self.phases, self.events)

    def __repr__(self):
        return "Tracer(%d spans, %d phases)" % (len(self.spans), len(self.phases))


class ExecutionTrace:
    """The span forest of one execution, with derived aggregates."""

    def __init__(self, spans, phases=(), events=()):
        self.spans = list(spans)
        self.phases = list(phases)
        self.events = list(events)

    @property
    def roots(self):
        """Spans with no parent (one per executed plan root)."""
        return [span for span in self.spans if span.parent_index is None]

    def exclusive(self, span):
        """Span counters minus the inclusive counters of its children.

        Returns a dict with ``wall_seconds``, ``pages_read``,
        ``pages_written``, ``records_processed``, and ``index_probes``.
        Clamped at zero: a child opened eagerly inside the parent's
        produce step is measured by both windows, never negatively.
        """
        children = [self.spans[index] for index in span.children]
        return {
            "wall_seconds": max(
                0.0,
                span.wall_seconds - sum(c.wall_seconds for c in children),
            ),
            "pages_read": max(
                0, span.pages_read - sum(c.pages_read for c in children)
            ),
            "pages_written": max(
                0, span.pages_written - sum(c.pages_written for c in children)
            ),
            "records_processed": max(
                0,
                span.records_processed
                - sum(c.records_processed for c in children),
            ),
            "index_probes": max(
                0, span.index_probes - sum(c.index_probes for c in children)
            ),
        }

    def walk(self):
        """Yield ``(span, depth)`` in execution-tree order."""
        index_children = {span.index: span.children for span in self.spans}

        def visit(span, depth):
            yield span, depth
            for child_index in index_children[span.index]:
                yield from visit(self.spans[child_index], depth + 1)

        for root in self.roots:
            yield from visit(root, 0)

    def render(self, show_wall=False):
        """Indented textual rendering of the span forest."""
        lines = []
        for span, depth in self.walk():
            line = "%s%s  rows=%d pages=%d records=%d" % (
                "  " * depth,
                span.label(),
                span.rows,
                span.total_pages,
                span.records_processed,
            )
            if show_wall:
                line += " wall=%.6fs" % span.wall_seconds
            lines.append(line)
        return "\n".join(lines)

    def __repr__(self):
        return "ExecutionTrace(%d spans)" % len(self.spans)


def maybe_phase(tracer, name, **meta):
    """``tracer.phase(...)`` or a no-op context when ``tracer`` is None.

    The helper low layers (optimizer, search engine) call so the
    untraced path stays a single ``is None`` test.
    """
    if tracer is None:
        return nullcontext(None)
    return tracer.phase(name, **meta)


def _operator_detail(plan):
    """Node-local description used in span labels (deterministic)."""
    relation = getattr(plan, "relation_name", None)
    if relation is not None:
        attribute = getattr(plan, "attribute", None)
        if attribute is not None:
            return "%s.%s" % (relation, attribute)
        return relation
    inner = getattr(plan, "inner_relation", None)
    if inner is not None:
        return "%s.%s" % (inner, getattr(plan, "inner_attribute", "?"))
    alternatives = getattr(plan, "alternatives", None)
    if alternatives is not None:
        return "(%d alternatives)" % len(alternatives)
    attribute = getattr(plan, "attribute", None)
    if attribute is not None:
        return "on %s" % attribute
    return ""
