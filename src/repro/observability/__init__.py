"""Operator-level observability: tracing, metrics, and accuracy telemetry.

The paper's entire argument rests on the optimizer's cost functions
being re-evaluated at start-up time — yet nothing in the seed repo
checked how close those predictions land to what the Volcano executor
actually charges to :class:`~repro.storage.iostats.IOStatistics`.
This package closes that estimated-vs-actual feedback loop:

* :mod:`.trace` — a low-overhead structured tracer.  Every iterator in
  :mod:`repro.executor.iterators` records an open/next/close span
  (rows produced, pages charged, per-operator wall time) when a
  :class:`Tracer` is attached to the execution context; with no tracer
  the per-operator check is a single ``is None`` test at ``open`` time
  and the per-record path is completely untouched.  Optimizer and
  search phases record :class:`PhaseSpan` timings through the same
  object.
* :mod:`.metrics` — a thread-safe :class:`MetricsRegistry` of
  counters, gauges, and histograms, wired into
  :class:`~repro.service.service.QueryService` and
  :class:`~repro.service.cache.PlanCache` (cache hit/miss, start-up
  latency histograms, re-optimization counts), exportable as JSON and
  Prometheus text format.
* :mod:`.explain` — ``EXPLAIN ANALYZE``: execute a plan under a
  tracer and render the operator tree annotated with estimated vs
  actual cardinality and cost, plus a q-error summary
  (``python -m repro explain --analyze``).
* :mod:`.accuracy` — a cost-model accuracy report replaying the five
  paper queries and emitting per-operator q-error distributions, the
  feedback signal a future adaptive re-optimization layer consumes
  (``python -m repro accuracy``).

``explain`` and ``accuracy`` sit above the executor and optimizer, so
they are *not* imported here — import the submodules directly.  This
module stays a leaf dependency that low layers (iterators, search) can
import without cycles.
"""

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.trace import (
    ExecutionTrace,
    OperatorSpan,
    PhaseSpan,
    Tracer,
    maybe_phase,
    q_error,
)

__all__ = [
    "Counter",
    "ExecutionTrace",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OperatorSpan",
    "PhaseSpan",
    "Tracer",
    "maybe_phase",
    "q_error",
]
