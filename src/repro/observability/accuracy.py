"""Cost-model accuracy telemetry over the paper's five queries.

"Adaptive Cost Model for Query Optimization" (Vasilenko et al.) and
"Revisiting Runtime Dynamic Optimization" (Pavlopoulou et al.) both
identify the estimated-vs-actual feedback loop as the prerequisite for
any adaptive re-optimization.  This module produces that signal for
the reproduction: it replays the five paper queries under seeded
random bindings, executes the optimized plans with the tracer on, and
aggregates per-operator cardinality q-errors into distributions a
future mid-query re-optimization layer can consume.

``python -m repro accuracy`` renders the report;
:meth:`AccuracyReport.to_json` exports it for external tooling.
"""

import json

from repro.catalog import populate_database
from repro.observability.explain import explain_analyze
from repro.optimizer.optimizer import optimize_dynamic, optimize_static
from repro.common.stats import percentile
from repro.storage import Database
from repro.workloads import binding_series, paper_workload

#: The paper's query numbers, replayed by default.
PAPER_QUERY_NUMBERS = (1, 2, 3, 4, 5)


class OperatorObservation:
    """One operator's estimate-vs-actual pair from one invocation."""

    __slots__ = ("query", "operator", "detail", "estimated_rows",
                 "actual_rows", "q_error")

    def __init__(self, query, profile):
        self.query = query
        self.operator = profile.span.operator
        self.detail = profile.span.detail
        self.estimated_rows = (
            profile.estimated_rows.midpoint
            if profile.estimated_rows is not None
            else None
        )
        self.actual_rows = profile.actual_rows
        self.q_error = profile.cardinality_q_error

    def __repr__(self):
        return "OperatorObservation(%s %s, q=%s)" % (
            self.query,
            self.operator,
            "%.2f" % self.q_error if self.q_error is not None else "?",
        )


class QueryAccuracy:
    """All observations of one query across its replayed invocations."""

    def __init__(self, query_name, invocations, observations):
        self.query_name = query_name
        self.invocations = invocations
        self.observations = list(observations)

    def q_errors(self):
        """Defined q-errors across all operators and invocations."""
        return [
            observation.q_error
            for observation in self.observations
            if observation.q_error is not None
        ]

    def __repr__(self):
        return "QueryAccuracy(%s, %d observations)" % (
            self.query_name,
            len(self.observations),
        )


class Distribution:
    """Summary statistics of one q-error sample set."""

    __slots__ = ("count", "mean", "p50", "p90", "max")

    def __init__(self, values):
        values = list(values)
        self.count = len(values)
        if values:
            self.mean = sum(values) / len(values)
            self.p50 = percentile(values, 0.50)
            self.p90 = percentile(values, 0.90)
            self.max = max(values)
        else:
            self.mean = self.p50 = self.p90 = self.max = 0.0

    def as_dict(self):
        """The statistics as a plain dict."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "max": self.max,
        }

    def __repr__(self):
        return "Distribution(n=%d, p50=%.2f, max=%.2f)" % (
            self.count,
            self.p50,
            self.max,
        )


class AccuracyReport:
    """Per-query and per-operator q-error distributions."""

    def __init__(self, queries, mode, invocations, seed):
        self.queries = list(queries)
        self.mode = mode
        self.invocations = invocations
        self.seed = seed

    def observations(self):
        """Every observation across every replayed query."""
        for query in self.queries:
            yield from query.observations

    def by_operator(self):
        """Operator name -> :class:`Distribution` of q-errors."""
        samples = {}
        for observation in self.observations():
            if observation.q_error is None:
                continue
            samples.setdefault(observation.operator, []).append(
                observation.q_error
            )
        return {
            operator: Distribution(values)
            for operator, values in sorted(samples.items())
        }

    def by_query(self):
        """Query name -> :class:`Distribution` of q-errors."""
        return {
            query.query_name: Distribution(query.q_errors())
            for query in self.queries
        }

    def overall(self):
        """One distribution over every observation."""
        return Distribution(
            observation.q_error
            for observation in self.observations()
            if observation.q_error is not None
        )

    def render(self):
        """A fixed-width text report of the distributions."""
        lines = [
            "cost-model accuracy (%s plans, %d invocations/query, seed=%d)"
            % (self.mode, self.invocations, self.seed),
            "",
            "%-14s %6s %8s %8s %8s %8s"
            % ("per query", "n", "mean", "p50", "p90", "max"),
        ]
        for name, dist in self.by_query().items():
            lines.append(
                "%-14s %6d %8.2f %8.2f %8.2f %8.2f"
                % (name, dist.count, dist.mean, dist.p50, dist.p90, dist.max)
            )
        lines.append("")
        lines.append(
            "%-14s %6s %8s %8s %8s %8s"
            % ("per operator", "n", "mean", "p50", "p90", "max")
        )
        for operator, dist in self.by_operator().items():
            lines.append(
                "%-14s %6d %8.2f %8.2f %8.2f %8.2f"
                % (operator, dist.count, dist.mean, dist.p50, dist.p90,
                   dist.max)
            )
        overall = self.overall()
        lines.append("")
        lines.append(
            "overall: n=%d mean=%.2f p50=%.2f p90=%.2f max=%.2f"
            % (overall.count, overall.mean, overall.p50, overall.p90,
               overall.max)
        )
        return "\n".join(lines)

    def to_json(self, indent=None):
        """The report as a JSON string (for the adaptive layer)."""
        payload = {
            "mode": self.mode,
            "invocations": self.invocations,
            "seed": self.seed,
            "overall": self.overall().as_dict(),
            "by_query": {
                name: dist.as_dict() for name, dist in self.by_query().items()
            },
            "by_operator": {
                name: dist.as_dict()
                for name, dist in self.by_operator().items()
            },
        }
        return json.dumps(payload, indent=indent)

    def __repr__(self):
        return "AccuracyReport(%d queries, overall=%r)" % (
            len(self.queries),
            self.overall(),
        )


def cost_model_accuracy(
    query_numbers=PAPER_QUERY_NUMBERS,
    invocations=5,
    seed=0,
    mode="dynamic",
    execution_mode="row",
):
    """Replay paper queries traced and report q-error distributions.

    ``mode`` selects the plan kind replayed: ``"dynamic"`` executes
    the dynamic plan (choose-plan decisions resolve at open time, so
    the estimates profiled are the start-up re-evaluations), while
    ``"static"`` executes the traditional expected-value plan.
    ``execution_mode`` selects the engine (``"row"`` or ``"batch"``);
    traced row counts are exact in both, so the report is identical —
    the knob exists to let the accuracy pipeline exercise either
    executor.
    """
    if mode == "dynamic":
        optimize = optimize_dynamic
    elif mode == "static":
        optimize = optimize_static
    else:
        raise ValueError("accuracy mode must be 'dynamic' or 'static'")
    queries = []
    for number in query_numbers:
        workload = paper_workload(number, seed=seed)
        database = Database(workload.catalog)
        populate_database(database, seed=seed)
        plan = optimize(workload.catalog, workload.query).plan
        observations = []
        for bindings in binding_series(workload, count=invocations, seed=seed):
            result = explain_analyze(
                plan,
                database,
                bindings,
                workload.query.parameter_space,
                execution_mode=execution_mode,
            )
            observations.extend(
                OperatorObservation(workload.name, profile)
                for profile in result.profile.operators
            )
        queries.append(
            QueryAccuracy(workload.name, invocations, observations)
        )
    return AccuracyReport(queries, mode, invocations, seed)
