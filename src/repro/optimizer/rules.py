"""Transformation and implementation rules (the "optimizer generator"
part of the reproduction).

Transformation rules rewrite logical m-exprs within memo groups —
join commutativity and both associativity directions, whose closure
generates all connected bushy join trees (verified against an
independent enumerator in the test suite).  Implementation rules map
logical operators to physical algorithms per Table 1; the sort
enforcer produces required orders any algorithm can't deliver.  The
choose-plan (robustness) enforcer lives in the search engine itself,
where incomparable candidate sets emerge.
"""

from repro.algebra.physical import (
    BTreeScan,
    FileScan,
    Filter,
    FilterBTreeScan,
    HashJoin,
    IndexJoin,
    MergeJoin,
    Sort,
)
from repro.optimizer.memo import MExpr
from repro.optimizer.properties import PhysicalProperty


# ======================================================================
# Transformation rules
# ======================================================================


class TransformationRule:
    """Base class: rewrites one m-expr into equivalent m-exprs."""

    name = "transformation"

    def apply(self, engine, group, mexpr):
        """Return new m-exprs for ``group`` derived from ``mexpr``."""
        raise NotImplementedError


class JoinCommutativity(TransformationRule):
    """``A join B  ->  B join A``."""

    name = "join-commutativity"

    def apply(self, engine, group, mexpr):
        if mexpr.kind != MExpr.JOIN:
            return []
        flipped = [predicate.flipped() for predicate in mexpr.predicates]
        return [MExpr.join(mexpr.right_key, mexpr.left_key, flipped)]


class JoinAssociativityLeft(TransformationRule):
    """``(A join B) join C  ->  A join (B join C)``.

    Matching is structural on the memo: the rule fires for every join
    m-expr of the *left input group*, possibly creating the group for
    ``B join C`` (which the engine seeds and schedules for
    exploration).  Cross products are rejected: both the new inner and
    the new outer join must be connected by at least one predicate.
    """

    name = "join-associativity-left"

    def apply(self, engine, group, mexpr):
        if mexpr.kind != MExpr.JOIN or mexpr.left_key[0] != "join":
            return []
        results = []
        left_group = engine.memo.group(mexpr.left_key)
        right_relations = engine.relations_of(mexpr.right_key)
        for inner in list(left_group.mexprs):
            if inner.kind != MExpr.JOIN:
                continue
            a_key = inner.left_key
            b_relations = engine.relations_of(inner.right_key)
            bc_relations = b_relations | right_relations
            inner_predicates = engine.query.cross_predicates(
                b_relations, right_relations
            )
            if not inner_predicates:
                continue
            a_relations = engine.relations_of(a_key)
            outer_predicates = engine.query.cross_predicates(
                a_relations, bc_relations
            )
            if not outer_predicates:
                continue
            bc_key = engine.ensure_join_group(
                bc_relations, inner.right_key, mexpr.right_key, inner_predicates
            )
            results.append(MExpr.join(a_key, bc_key, outer_predicates))
        return results


class JoinAssociativityRight(TransformationRule):
    """``A join (B join C)  ->  (A join B) join C`` (the mirror)."""

    name = "join-associativity-right"

    def apply(self, engine, group, mexpr):
        if mexpr.kind != MExpr.JOIN or mexpr.right_key[0] != "join":
            return []
        results = []
        right_group = engine.memo.group(mexpr.right_key)
        left_relations = engine.relations_of(mexpr.left_key)
        for inner in list(right_group.mexprs):
            if inner.kind != MExpr.JOIN:
                continue
            b_relations = engine.relations_of(inner.left_key)
            c_key = inner.right_key
            ab_relations = left_relations | b_relations
            inner_predicates = engine.query.cross_predicates(
                left_relations, b_relations
            )
            if not inner_predicates:
                continue
            c_relations = engine.relations_of(c_key)
            outer_predicates = engine.query.cross_predicates(
                ab_relations, c_relations
            )
            if not outer_predicates:
                continue
            ab_key = engine.ensure_join_group(
                ab_relations, mexpr.left_key, inner.left_key, inner_predicates
            )
            results.append(MExpr.join(ab_key, c_key, outer_predicates))
        return results


DEFAULT_TRANSFORMATION_RULES = (
    JoinCommutativity(),
    JoinAssociativityLeft(),
    JoinAssociativityRight(),
)


# ======================================================================
# Implementation rules
# ======================================================================


class ImplementationRule:
    """Base class: maps a logical m-expr to physical plan candidates.

    ``build`` returns a list of candidate plans whose delivered
    properties satisfy ``prop``; it may call back into the engine for
    input plans (which are memoized winners, possibly robust
    choose-plan nodes in dynamic mode).
    """

    name = "implementation"

    def build(self, engine, group, mexpr, prop):
        """Candidate physical plans for the m-expr under ``prop``."""
        raise NotImplementedError


class GetSetToFileScan(ImplementationRule):
    """Get-Set -> File-Scan (no delivered order)."""

    name = "getset-filescan"

    def build(self, engine, group, mexpr, prop):
        if mexpr.kind != MExpr.GETSET or not prop.is_any:
            return []
        return [FileScan(mexpr.relation_name)]


class GetSetToBTreeScan(ImplementationRule):
    """Get-Set -> B-tree-Scan (delivers order on the indexed attribute).

    Under "any order" only *interesting* attributes are scanned (the
    query's selection and join attributes of the relation), mirroring
    System R's interesting orders; under a sort requirement the scan on
    exactly that attribute is generated when an index exists.
    """

    name = "getset-btreescan"

    def build(self, engine, group, mexpr, prop):
        if mexpr.kind != MExpr.GETSET or not engine.config.consider_btree_scan:
            return []
        relation = mexpr.relation_name
        if prop.is_any:
            attributes = engine.interesting_attributes(relation)
        else:
            relation_of = prop.sorted_on.split(".", 1)[0]
            if relation_of != relation:
                return []
            attributes = [prop.sorted_on.split(".", 1)[1]]
        plans = []
        for attribute in attributes:
            if engine.catalog.index_on(relation, attribute) is not None:
                plans.append(BTreeScan(relation, attribute))
        return plans


class SelectToFilter(ImplementationRule):
    """Select -> Filter over the base group's winner (same property)."""

    name = "select-filter"

    def build(self, engine, group, mexpr, prop):
        if mexpr.kind != MExpr.SELECT:
            return []
        predicate = engine.query.selection_for(mexpr.relation_name)
        entry = engine.best(mexpr.left_key, prop)
        if entry is None:
            return []
        return [Filter(entry.plan, predicate)]


class SelectToFilterBTreeScan(ImplementationRule):
    """Select -> Filter-B-tree-Scan (sargable index scan).

    Requires an index on the predicate's attribute and a range- or
    equality-comparison; delivers order on that attribute.
    """

    name = "select-filter-btreescan"

    SARGABLE_OPS = frozenset(("=", "<", "<=", ">", ">="))

    def build(self, engine, group, mexpr, prop):
        if mexpr.kind != MExpr.SELECT or not engine.config.consider_btree_scan:
            return []
        relation = mexpr.relation_name
        predicate = engine.query.selection_for(relation)
        attribute = predicate.attribute.split(".", 1)[1]
        if predicate.comparison.op.value not in self.SARGABLE_OPS:
            return []
        if engine.catalog.index_on(relation, attribute) is None:
            return []
        if not prop.is_any:
            if prop.sorted_on != "%s.%s" % (relation, attribute):
                return []
        return [FilterBTreeScan(relation, attribute, predicate)]


class JoinToHashJoin(ImplementationRule):
    """Join -> Hash-Join (left input builds; commutativity supplies the
    mirrored m-expr, so both build sides are considered)."""

    name = "join-hashjoin"

    def build(self, engine, group, mexpr, prop):
        if mexpr.kind != MExpr.JOIN or not prop.is_any:
            return []
        left = engine.best(mexpr.left_key, PhysicalProperty.any())
        if left is None or engine.partial_prune(left.cost):
            return []
        right = engine.best(mexpr.right_key, PhysicalProperty.any())
        if right is None:
            return []
        return [HashJoin(left.plan, right.plan, mexpr.predicates)]


class JoinToMergeJoin(ImplementationRule):
    """Join -> Merge-Join, requiring both inputs sorted on the join
    attributes of the primary predicate (delivered downstream)."""

    name = "join-mergejoin"

    def build(self, engine, group, mexpr, prop):
        if mexpr.kind != MExpr.JOIN or not engine.config.consider_merge_join:
            return []
        primary = mexpr.predicates[0]
        if not prop.is_any:
            if prop.sorted_on not in (
                primary.left_attribute,
                primary.right_attribute,
            ):
                return []
        left = engine.best(
            mexpr.left_key, PhysicalProperty.sorted(primary.left_attribute)
        )
        if left is None or engine.partial_prune(left.cost):
            return []
        right = engine.best(
            mexpr.right_key, PhysicalProperty.sorted(primary.right_attribute)
        )
        if right is None:
            return []
        return [MergeJoin(left.plan, right.plan, mexpr.predicates)]


class JoinToIndexJoin(ImplementationRule):
    """Join -> Index-Join when the right side is a single relation with
    an index on its join attribute.

    The inner relation's selection predicate (if any) becomes the
    residual predicate applied after each index fetch.  Delivers the
    outer input's sort order, so under a sort requirement the outer is
    asked for that order.
    """

    name = "join-indexjoin"

    def build(self, engine, group, mexpr, prop):
        if mexpr.kind != MExpr.JOIN or not engine.config.consider_index_join:
            return []
        right_relations = engine.relations_of(mexpr.right_key)
        if len(right_relations) != 1:
            return []
        inner_relation = next(iter(right_relations))
        primary = mexpr.predicates[0]
        inner_attribute_qualified = primary.attribute_for(inner_relation)
        if inner_attribute_qualified is None:
            return []
        inner_attribute = inner_attribute_qualified.split(".", 1)[1]
        if engine.catalog.index_on(inner_relation, inner_attribute) is None:
            return []
        if prop.is_any:
            outer_prop = PhysicalProperty.any()
        else:
            relation_of = prop.sorted_on.split(".", 1)[0]
            if relation_of not in engine.relations_of(mexpr.left_key):
                return []
            outer_prop = prop
        outer = engine.best(mexpr.left_key, outer_prop)
        if outer is None or engine.partial_prune(outer.cost):
            return []
        residual = engine.query.selection_for(inner_relation)
        return [
            IndexJoin(
                outer.plan,
                inner_relation,
                inner_attribute,
                mexpr.predicates,
                residual_predicate=residual,
            )
        ]


class SortEnforcer(ImplementationRule):
    """Enforce a sort order on the group's unordered winner.

    Not tied to any m-expr kind: the engine invokes it once per
    (group, sorted-property) pair.
    """

    name = "sort-enforcer"

    def build(self, engine, group, mexpr, prop):
        if prop.is_any:
            return []
        base = engine.best(group.key, PhysicalProperty.any())
        if base is None:
            return []
        return [Sort(base.plan, prop.sorted_on)]


DEFAULT_IMPLEMENTATION_RULES = (
    GetSetToFileScan(),
    GetSetToBTreeScan(),
    SelectToFilter(),
    SelectToFilterBTreeScan(),
    JoinToHashJoin(),
    JoinToMergeJoin(),
    JoinToIndexJoin(),
)
