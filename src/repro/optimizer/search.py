"""The search engine: top-down memoizing dynamic programming extended
for partially ordered costs (paper Sections 3 and 5).

Differences from a traditional Volcano-style engine, all induced by
cost incomparability:

* per (group, physical property) the engine retains the full set of
  *potentially optimal* plans — plans whose cost intervals pairwise
  overlap — instead of a single winner;
* when that set has more than one member, the plans are linked by a
  choose-plan operator (the plan-robustness enforcer) and the robust
  plan is what parent operators consume;
* branch-and-bound pruning subtracts only guaranteed (lower-bound)
  cost and can discard a candidate only when its lower bound exceeds
  the smallest known upper bound, which is why dynamic-plan
  optimization is measurably slower than static optimization
  (Figure 5).
"""

import time

from repro.algebra.physical import ChoosePlan
from repro.common.errors import OptimizationError
from repro.common.ordering import PartialOrder
from repro.common.rng import make_rng
from repro.cost.formulas import CostModel
from repro.cost.model import compare_costs
from repro.cost.parameters import Bindings, Valuation
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.memo import Memo, MExpr, base_key, join_key, select_key
from repro.optimizer.properties import PhysicalProperty
from repro.optimizer.rules import (
    DEFAULT_IMPLEMENTATION_RULES,
    DEFAULT_TRANSFORMATION_RULES,
    SortEnforcer,
)

_IN_PROGRESS = object()


class PlanEntry:
    """Winner for one (group, property): a robust plan and its cost."""

    __slots__ = ("plan", "result", "alternatives")

    def __init__(self, plan, result, alternatives):
        self.plan = plan
        self.result = result
        #: the incomparable candidate set behind the robust plan
        self.alternatives = alternatives

    @property
    def cost(self):
        """Cost interval of the (robust) plan."""
        return self.result.cost

    def __repr__(self):
        return "PlanEntry(%d alternatives, cost=%r)" % (
            len(self.alternatives),
            self.cost,
        )


class SearchStatistics:
    """Counters describing one optimization run."""

    def __init__(self):
        self.groups_created = 0
        self.mexprs_total = 0
        self.rule_applications = 0
        self.candidates_considered = 0
        self.pruned_by_bound = 0
        self.pruned_by_dominance = 0
        self.pruned_by_multipoint = 0
        self.winners_computed = 0
        self.cost_evaluations = 0
        self.optimization_seconds = 0.0

    def as_dict(self):
        """All counters as a plain dict (for reports)."""
        return {
            "groups_created": self.groups_created,
            "mexprs_total": self.mexprs_total,
            "rule_applications": self.rule_applications,
            "candidates_considered": self.candidates_considered,
            "pruned_by_bound": self.pruned_by_bound,
            "pruned_by_dominance": self.pruned_by_dominance,
            "pruned_by_multipoint": self.pruned_by_multipoint,
            "winners_computed": self.winners_computed,
            "cost_evaluations": self.cost_evaluations,
            "optimization_seconds": self.optimization_seconds,
        }

    def __repr__(self):
        return "SearchStatistics(%r)" % (self.as_dict(),)


class OptimizationResult:
    """Everything an optimization run produces."""

    def __init__(self, plan, entry, query, config, memo, statistics, root_key):
        self.plan = plan
        self.entry = entry
        self.query = query
        self.config = config
        self.memo = memo
        self.statistics = statistics
        self.root_key = root_key

    @property
    def cost(self):
        """Compile-time cost interval of the produced plan."""
        return self.entry.cost

    def node_count(self):
        """Operator nodes in the plan DAG (the Figure 6 metric)."""
        return self.plan.node_count()

    def choose_plan_count(self):
        """Choose-plan operators in the plan DAG."""
        return self.plan.choose_plan_count()

    def logical_alternatives(self):
        """Distinct logical join trees encoded in the memo."""
        return self.memo.logical_tree_count(self.root_key)

    def __repr__(self):
        return (
            "OptimizationResult(%s, cost=%r, nodes=%d, choose_plans=%d)"
            % (
                self.query.name,
                self.cost,
                self.node_count(),
                self.choose_plan_count(),
            )
        )


class SearchEngine:
    """A generated optimizer: catalog + rules + cost model + search."""

    def __init__(
        self,
        catalog,
        config=None,
        transformation_rules=DEFAULT_TRANSFORMATION_RULES,
        implementation_rules=DEFAULT_IMPLEMENTATION_RULES,
    ):
        self.catalog = catalog
        self.config = config if config is not None else OptimizerConfig()
        self.transformation_rules = tuple(transformation_rules)
        self.implementation_rules = tuple(implementation_rules)
        self.sort_enforcer = SortEnforcer()
        # Per-run state, initialized by optimize():
        self.query = None
        self.memo = None
        self.cost_model = None
        self.stats = None
        self._queue = None
        self._upper_stack = []
        self._sample_models = None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def optimize(self, query, valuation=None, tracer=None):
        """Optimize a query; returns an :class:`OptimizationResult`.

        ``valuation`` defaults to the mode-appropriate one: expected
        values for static mode, compile-time bounds otherwise.  Passing
        a runtime valuation performs run-time optimization (the
        paper's second scenario).

        With a :class:`~repro.observability.trace.Tracer` the three
        search phases — memo/group construction, exploration, winner
        extraction — each record a timed phase span.
        """
        from repro.observability.trace import maybe_phase

        started = time.perf_counter()
        self.query = query
        if valuation is None:
            if self.config.is_static:
                valuation = Valuation.expected(query.parameter_space)
            else:
                valuation = Valuation.bounds(query.parameter_space)
        self.cost_model = CostModel(
            self.catalog,
            valuation,
            choose_plan_overhead=self.config.choose_plan_overhead,
        )
        self.memo = Memo()
        self.stats = SearchStatistics()
        self._queue = []
        self._upper_stack = []
        self._sample_models = None

        with maybe_phase(tracer, "search:build-groups"):
            root_key = self._build_initial_groups(query)
        with maybe_phase(tracer, "search:explore") as explore_span:
            self._explore_all()
            if explore_span is not None:
                explore_span.meta["mexprs"] = self.memo.mexpr_count()
                explore_span.meta["rule_applications"] = (
                    self.stats.rule_applications
                )
        with maybe_phase(tracer, "search:extract"):
            entry = self.best(root_key, PhysicalProperty.any())
            if entry is None:
                raise OptimizationError("no plan found for query %r" % query.name)
            if query.projection is not None:
                # Projection is decoration: apply it once above the winner.
                from repro.algebra.physical import Project

                projected = Project(entry.plan, query.projection)
                result = self.cost_model.evaluate(projected)
                entry = PlanEntry(projected, result, entry.alternatives)

        self.stats.groups_created = self.memo.group_count()
        self.stats.mexprs_total = self.memo.mexpr_count()
        self.stats.cost_evaluations = self.cost_model.evaluations
        self.stats.optimization_seconds = time.perf_counter() - started
        return OptimizationResult(
            entry.plan, entry, query, self.config, self.memo, self.stats, root_key
        )

    # ------------------------------------------------------------------
    # Memo construction and exploration
    # ------------------------------------------------------------------

    def relations_of(self, key):
        """Relation set represented by a group key."""
        if key[0] == "join":
            return key[1]
        return frozenset((key[1],))

    def top_key_for_relation(self, relation_name):
        """Key of the topmost group of a single relation."""
        if self.query.selection_for(relation_name) is not None:
            return select_key(relation_name)
        return base_key(relation_name)

    def interesting_attributes(self, relation_name):
        """Attributes of a relation worth an ordered scan.

        The query's selection attribute and every join attribute the
        relation contributes — our rendering of System R's
        "interesting orders".
        """
        attributes = set()
        predicate = self.query.selection_for(relation_name)
        if predicate is not None:
            attributes.add(predicate.attribute.split(".", 1)[1])
        for join_predicate in self.query.join_predicates:
            for qualified in (
                join_predicate.left_attribute,
                join_predicate.right_attribute,
            ):
                relation, attribute = qualified.split(".", 1)
                if relation == relation_name:
                    attributes.add(attribute)
        return sorted(attributes)

    def _build_initial_groups(self, query):
        """Create leaf groups and a connected initial join tree."""
        for relation_name in query.relations:
            if not self.catalog.has_relation(relation_name):
                raise OptimizationError(
                    "query references unknown relation %r" % relation_name
                )
            group, _ = self.memo.get_or_create(base_key(relation_name))
            added = group.add_mexpr(MExpr.getset(relation_name))
            if added is not None:
                self._queue.append((group, added))
            if query.selection_for(relation_name) is not None:
                sgroup, _ = self.memo.get_or_create(select_key(relation_name))
                sadded = sgroup.add_mexpr(
                    MExpr.select(relation_name, base_key(relation_name))
                )
                if sadded is not None:
                    self._queue.append((sgroup, sadded))

        if len(query.relations) == 1:
            return self.top_key_for_relation(query.relations[0])

        order = self._connected_order(query)
        accumulated = frozenset((order[0],))
        left_key = self.top_key_for_relation(order[0])
        for relation_name in order[1:]:
            right_key = self.top_key_for_relation(relation_name)
            predicates = query.cross_predicates(
                accumulated, frozenset((relation_name,))
            )
            accumulated = accumulated | {relation_name}
            left_key = self.ensure_join_group(
                accumulated, left_key, right_key, predicates
            )
        return left_key

    def _connected_order(self, query):
        """Relation order whose every prefix is join-connected (BFS)."""
        remaining = list(query.relations)
        order = [remaining.pop(0)]
        placed = {order[0]}
        while remaining:
            for index, candidate in enumerate(remaining):
                if query.cross_predicates(placed, frozenset((candidate,))):
                    order.append(candidate)
                    placed.add(candidate)
                    remaining.pop(index)
                    break
            else:
                raise OptimizationError(
                    "join graph is disconnected; cannot order relations"
                )
        return order

    def ensure_join_group(self, relations, left_key, right_key, predicates):
        """Get or create a join group, seeding it with one split.

        New groups are scheduled for rule exploration, so the closure
        of commutativity and associativity reaches every connected
        split of every connected subset.
        """
        key = join_key(relations)
        group, created = self.memo.get_or_create(key)
        seed = group.add_mexpr(MExpr.join(left_key, right_key, predicates))
        if created or seed is not None:
            self._exploration_dirty = True
        return key

    def _explore_all(self):
        """Apply transformation rules to a global fixpoint.

        A single worklist pass is not enough: associativity matches
        against the *current* m-exprs of an input group, and a group
        may gain m-exprs after its parents were processed (pronounced
        on star and cycle join graphs).  We therefore sweep all groups
        repeatedly until no rule adds anything — memoized deduplication
        in :meth:`Group.add_mexpr` guarantees termination.
        """
        self._queue = []
        self._exploration_dirty = True
        while self._exploration_dirty:
            self._exploration_dirty = False
            for group in list(self.memo.groups()):
                for mexpr in list(group.mexprs):
                    for rule in self.transformation_rules:
                        for produced in rule.apply(self, group, mexpr):
                            self.stats.rule_applications += 1
                            if group.add_mexpr(produced) is not None:
                                self._exploration_dirty = True

    # ------------------------------------------------------------------
    # Physical optimization
    # ------------------------------------------------------------------

    def best(self, key, prop):
        """The winner (robust plan) for a group under a property.

        Returns ``None`` when the property is unsatisfiable for the
        group (e.g. an order on an attribute of another relation).
        """
        group = self.memo.group(key)
        prop_key = prop.key()
        cached = group.winners.get(prop_key)
        if cached is _IN_PROGRESS:
            raise OptimizationError(
                "cyclic property requirement on group %r" % (key,)
            )
        if prop_key in group.winners:
            return cached
        if not self._property_feasible(group, prop):
            group.winners[prop_key] = None
            return None
        group.winners[prop_key] = _IN_PROGRESS

        self._upper_stack.append(float("inf"))
        try:
            candidates = []
            for mexpr in list(group.mexprs):
                for rule in self.implementation_rules:
                    for plan in rule.build(self, group, mexpr, prop):
                        self._consider(candidates, plan, prop)
            for plan in self.sort_enforcer.build(self, group, None, prop):
                self._consider(candidates, plan, prop)
        finally:
            self._upper_stack.pop()

        entries = self._prune(candidates)
        entry = self._finalize(entries)
        group.winners[prop_key] = entry
        self.stats.winners_computed += 1
        return entry

    def _property_feasible(self, group, prop):
        """Quick reject: a sort order must name an attribute of the group."""
        if prop.is_any:
            return True
        relation = prop.sorted_on.split(".", 1)[0]
        return relation in group.relations

    def _consider(self, candidates, plan, prop):
        """Cost a candidate, apply bound pruning, and collect it."""
        self.stats.candidates_considered += 1
        result = self.cost_model.evaluate(plan)
        if not prop.satisfied_by(result.sort_orders):
            return
        upper = self._upper_stack[-1]
        if self.config.branch_and_bound and result.cost.lower > upper:
            # Only the guaranteed lower bound may be compared against
            # the best known upper bound — the paper's weakened pruning.
            self.stats.pruned_by_bound += 1
            return
        candidates.append((plan, result))
        if result.cost.upper < upper:
            self._upper_stack[-1] = result.cost.upper

    def partial_prune(self, partial_cost):
        """Bound check usable by rules mid-construction (left input done).

        Returns True when a candidate whose inputs already cost
        ``partial_cost.lower`` can be discarded — with interval costs
        only the guaranteed lower bound counts, the paper's weakened
        pruning; with point costs (static mode) this is traditional
        branch-and-bound, which is what makes static optimization
        measurably faster (Figure 5).
        """
        if not self.config.branch_and_bound or not self._upper_stack:
            return False
        if partial_cost.lower > self._upper_stack[-1]:
            self.stats.pruned_by_bound += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Pruning with partially ordered costs
    # ------------------------------------------------------------------

    def _prune(self, candidates):
        """Keep only potentially optimal candidates.

        A candidate is discarded when another candidate's cost is
        certainly no greater (LESS, or EQUAL under static/tie-breaking
        rules), or — with the optional Section 3 heuristic — when it
        is more expensive at every sampled parameter setting.
        """
        kept = []
        for plan, result in candidates:
            dominated = False
            survivors = []
            for kept_plan, kept_result in kept:
                if dominated:
                    survivors.append((kept_plan, kept_result))
                    continue
                relation = compare_costs(
                    kept_result.cost,
                    result.cost,
                    exhaustive=self.config.is_exhaustive,
                )
                if relation is PartialOrder.LESS:
                    dominated = True
                    survivors.append((kept_plan, kept_result))
                elif relation is PartialOrder.EQUAL:
                    if self._drop_equal():
                        dominated = True
                    survivors.append((kept_plan, kept_result))
                elif relation is PartialOrder.GREATER:
                    self.stats.pruned_by_dominance += 1
                    # kept plan is strictly worse; drop it
                elif self._multipoint_beats(kept_plan, plan):
                    dominated = True
                    self.stats.pruned_by_multipoint += 1
                    survivors.append((kept_plan, kept_result))
                elif self._multipoint_beats(plan, kept_plan):
                    self.stats.pruned_by_multipoint += 1
                else:
                    survivors.append((kept_plan, kept_result))
            if dominated:
                self.stats.pruned_by_dominance += 1
                kept = survivors
            else:
                survivors.append((plan, result))
                kept = survivors
        if (
            self.config.max_alternatives is not None
            and len(kept) > self.config.max_alternatives
        ):
            kept.sort(key=lambda pair: pair[1].cost.midpoint)
            kept = kept[: self.config.max_alternatives]
        return kept

    def _drop_equal(self):
        """Whether exactly-equal-cost plans are tie-broken away."""
        if self.config.is_static:
            return True
        return not self.config.keep_equal_cost_plans

    def _multipoint_beats(self, plan_a, plan_b):
        """Section 3 heuristic: does A beat B at every sampled binding?"""
        if not self.config.multipoint_heuristic or self.config.is_exhaustive:
            return False
        strictly_better = False
        for model in self._sampled_models():
            cost_a = model.evaluate(plan_a).cost.lower
            cost_b = model.evaluate(plan_b).cost.lower
            if cost_a > cost_b:
                return False
            if cost_a < cost_b:
                strictly_better = True
        return strictly_better

    def _sampled_models(self):
        """Cost models at sampled parameter settings (built lazily)."""
        if self._sample_models is None:
            rng = make_rng(self.config.seed, "multipoint", self.query.name)
            space = self.query.parameter_space
            models = []
            for _ in range(self.config.multipoint_samples):
                bindings = Bindings()
                for name in space.uncertain_names():
                    bounds = space.get(name).bounds
                    bindings.bind(name, rng.uniform(bounds.lower, bounds.upper))
                valuation = Valuation.runtime(space, bindings)
                models.append(
                    CostModel(
                        self.catalog,
                        valuation,
                        choose_plan_overhead=self.config.choose_plan_overhead,
                    )
                )
            self._sample_models = models
        return self._sample_models

    # ------------------------------------------------------------------
    # Winner finalization (choose-plan insertion)
    # ------------------------------------------------------------------

    def _finalize(self, entries):
        """Turn the surviving candidate set into a winner entry.

        Static mode demands a single plan; dynamic mode links multiple
        incomparable plans with a choose-plan operator whose cost is
        the minimum envelope plus decision overhead.
        """
        if not entries:
            return None
        if len(entries) == 1:
            plan, result = entries[0]
            return PlanEntry(plan, result, entries)
        if self.config.is_static:
            # A total order is expected; pick the cheapest point.
            entries = sorted(entries, key=lambda pair: pair[1].cost.lower)
            plan, result = entries[0]
            return PlanEntry(plan, result, [entries[0]])
        choose = ChoosePlan([plan for plan, _ in entries])
        result = self.cost_model.evaluate(choose)
        return PlanEntry(choose, result, entries)
