"""Optimizer configuration: modes, pruning, and heuristics.

The modes correspond to the paper's three cost treatments:

* ``STATIC`` — traditional optimization; every parameter at its
  expected value, costs are points, totally ordered, one plan out.
* ``DYNAMIC`` — dynamic-plan optimization; uncertain parameters at
  their bounds, interval costs, partially ordered, choose-plan
  operators link incomparable alternatives.
* ``EXHAUSTIVE`` — every comparison of non-identical costs is declared
  incomparable, producing the paper's "exhaustive plan" that provably
  contains the optimal plan for every binding (used to validate the
  optimality guarantee, Section 3).
"""

import enum

from repro.cost.model import CHOOSE_PLAN_OVERHEAD_SECONDS


class OptimizerMode(enum.Enum):
    """Cost treatment selected for an optimization run."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    EXHAUSTIVE = "exhaustive"


class OptimizerConfig:
    """Tunable behaviour of the search engine.

    Parameters
    ----------
    mode:
        The :class:`OptimizerMode`.
    branch_and_bound:
        Enable pruning with cost bounds.  With interval costs only the
        lower bound may be subtracted, which is exactly the weakened
        pruning the paper analyzes (Sections 3 and 5); disable for the
        ablation benchmark.
    keep_equal_cost_plans:
        In dynamic mode, keep plans whose costs are exactly equal
        points instead of tie-breaking arbitrarily — the paper's
        prototype handles ties "in the most naive manner" to present
        the technique conservatively.
    consider_merge_join / consider_index_join / consider_btree_scan:
        Toggle algorithm classes (useful in tests and ablations).
    multipoint_heuristic:
        The Section 3 heuristic: evaluate both cost functions at a
        number of sampled parameter settings and drop a plan that is
        more expensive at every sample even though the intervals
        overlap.  Off by default, like the paper's prototype.
    multipoint_samples:
        Number of sampled parameter settings for the heuristic.
    max_alternatives:
        Optional hard cap on alternatives kept per (group, property);
        ``None`` (the default) reproduces the paper faithfully.
    choose_plan_overhead:
        Seconds charged per choose-plan decision at start-up time.
    """

    def __init__(
        self,
        mode=OptimizerMode.DYNAMIC,
        branch_and_bound=True,
        keep_equal_cost_plans=True,
        consider_merge_join=True,
        consider_index_join=True,
        consider_btree_scan=True,
        multipoint_heuristic=False,
        multipoint_samples=5,
        max_alternatives=None,
        choose_plan_overhead=CHOOSE_PLAN_OVERHEAD_SECONDS,
        seed=0,
    ):
        self.mode = mode
        self.branch_and_bound = branch_and_bound
        self.keep_equal_cost_plans = keep_equal_cost_plans
        self.consider_merge_join = consider_merge_join
        self.consider_index_join = consider_index_join
        self.consider_btree_scan = consider_btree_scan
        self.multipoint_heuristic = multipoint_heuristic
        self.multipoint_samples = multipoint_samples
        self.max_alternatives = max_alternatives
        self.choose_plan_overhead = choose_plan_overhead
        self.seed = seed

    @classmethod
    def static(cls, **overrides):
        """Configuration for traditional (static) optimization."""
        overrides.setdefault("mode", OptimizerMode.STATIC)
        return cls(**overrides)

    @classmethod
    def dynamic(cls, **overrides):
        """Configuration for dynamic-plan optimization."""
        overrides.setdefault("mode", OptimizerMode.DYNAMIC)
        return cls(**overrides)

    @classmethod
    def exhaustive(cls, **overrides):
        """Configuration producing the exhaustive plan."""
        overrides.setdefault("mode", OptimizerMode.EXHAUSTIVE)
        return cls(**overrides)

    @property
    def is_static(self):
        """True in traditional mode."""
        return self.mode is OptimizerMode.STATIC

    @property
    def is_exhaustive(self):
        """True in exhaustive mode."""
        return self.mode is OptimizerMode.EXHAUSTIVE

    def __repr__(self):
        return "OptimizerConfig(mode=%s, bnb=%s)" % (
            self.mode.value,
            self.branch_and_bound,
        )
