"""Public optimizer facade.

Four entry points mirror the paper's optimization scenarios:

* :func:`optimize_static` — traditional compile-time optimization with
  expected parameter values; produces a static plan.
* :func:`optimize_dynamic` — dynamic-plan optimization with interval
  costs; produces a dynamic plan containing choose-plan operators.
* :func:`optimize_runtime` — complete optimization at start-up time
  with actual bindings (the "brute-force" remedy).
* :func:`optimize_exhaustive` — every comparison incomparable; the
  exhaustive plan used to validate the optimality guarantee.

Every entry point accepts an optional
:class:`~repro.observability.trace.Tracer`; when given, the run
records phase spans (group construction, exploration, plan
extraction) with the search statistics attached — the optimizer half
of the observability layer.  ``tracer=None`` costs a single ``is
None`` test per phase.
"""

from repro.cost.parameters import Valuation
from repro.observability.trace import maybe_phase
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.query import QuerySpec
from repro.optimizer.search import OptimizationResult, SearchEngine

__all__ = [
    "OptimizationResult",
    "optimize_dynamic",
    "optimize_exhaustive",
    "optimize_runtime",
    "optimize_static",
]


def _as_query(query, memory_uncertain=False):
    """Accept either a QuerySpec or a logical expression tree."""
    if isinstance(query, QuerySpec):
        return query
    return QuerySpec.from_logical(query, memory_uncertain=memory_uncertain)


def _run(catalog, query, config, mode, valuation=None, tracer=None):
    """Optimize under a phase span carrying the search statistics."""
    engine = SearchEngine(catalog, config)
    with maybe_phase(tracer, "optimize:%s" % mode) as span:
        result = engine.optimize(query, valuation=valuation, tracer=tracer)
        if span is not None:
            span.meta.update(result.statistics.as_dict())
            span.meta["query"] = query.name
    return result


def optimize_static(catalog, query, config=None, tracer=None):
    """Traditional optimization: one static plan from expected values."""
    query = _as_query(query)
    if config is None:
        config = OptimizerConfig.static()
    elif not config.is_static:
        raise ValueError("optimize_static needs a static-mode config")
    return _run(catalog, query, config, "static", tracer=tracer)


def optimize_dynamic(catalog, query, config=None, tracer=None):
    """Dynamic-plan optimization: interval costs, choose-plan operators."""
    query = _as_query(query)
    if config is None:
        config = OptimizerConfig.dynamic()
    return _run(catalog, query, config, "dynamic", tracer=tracer)


def optimize_runtime(catalog, query, bindings, config=None, tracer=None):
    """Complete optimization at start-up time with actual bindings.

    This is the paper's second scenario: parameters are points (their
    true values), costs are totally ordered, and a fresh static plan is
    produced for this one invocation.
    """
    query = _as_query(query)
    if config is None:
        config = OptimizerConfig.static()
    valuation = Valuation.runtime(query.parameter_space, bindings)
    return _run(
        catalog, query, config, "runtime", valuation=valuation, tracer=tracer
    )


def optimize_exhaustive(catalog, query, config=None, tracer=None):
    """Produce the exhaustive plan (every comparison incomparable)."""
    query = _as_query(query)
    if config is None:
        config = OptimizerConfig.exhaustive()
    return _run(catalog, query, config, "exhaustive", tracer=tracer)
