"""Physical properties: sort order and plan robustness.

Physical properties generalize System R's "interesting orders" (paper
Section 2).  A *required* property constrains which plans may answer a
(sub)query; a plan *delivers* a set of sort orders.  Plan robustness —
the property enforced by the choose-plan operator — is handled
implicitly by the search engine: in dynamic mode every winner returned
for a (group, property) pair is robust.
"""


class PhysicalProperty:
    """A required physical property: "any order" or "sorted on X"."""

    __slots__ = ("sorted_on",)

    def __init__(self, sorted_on=None):
        self.sorted_on = sorted_on

    @classmethod
    def any(cls):
        """No ordering requirement."""
        return _ANY

    @classmethod
    def sorted(cls, attribute):
        """Output must be sorted on the qualified attribute."""
        return cls(sorted_on=attribute)

    @property
    def is_any(self):
        """True when no ordering is required."""
        return self.sorted_on is None

    def satisfied_by(self, sort_orders):
        """True when delivered ``sort_orders`` meet this requirement."""
        if self.sorted_on is None:
            return True
        return self.sorted_on in sort_orders

    def key(self):
        """Hashable memo key for winner tables."""
        return ("sorted", self.sorted_on) if self.sorted_on else ("any",)

    def __eq__(self, other):
        if not isinstance(other, PhysicalProperty):
            return NotImplemented
        return self.sorted_on == other.sorted_on

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        if self.sorted_on is None:
            return "PhysicalProperty(any)"
        return "PhysicalProperty(sorted on %s)" % self.sorted_on


_ANY = PhysicalProperty()
