"""The memo: groups of logically equivalent expressions.

The Volcano search engine uses "a top-down, memoizing variant of
dynamic programming" (paper Section 2).  A *group* collects all
logically equivalent multi-expressions (m-exprs); each m-expr is an
operator whose inputs are *groups*, so one m-expr stands for the
combinatorially many trees obtainable by expanding its input groups.
Winner tables memoize the best (set of) physical plans per required
physical property.
"""

from repro.common.errors import OptimizationError


class MExpr:
    """A logical multi-expression: an operator over input groups."""

    GETSET = "getset"
    SELECT = "select"
    JOIN = "join"

    __slots__ = ("kind", "relation_name", "left_key", "right_key", "predicates")

    def __init__(self, kind, relation_name=None, left_key=None, right_key=None,
                 predicates=()):
        self.kind = kind
        self.relation_name = relation_name
        self.left_key = left_key
        self.right_key = right_key
        self.predicates = tuple(predicates)

    @classmethod
    def getset(cls, relation_name):
        """Get-Set of a base relation."""
        return cls(cls.GETSET, relation_name=relation_name)

    @classmethod
    def select(cls, relation_name, input_key):
        """Select over the relation's base group."""
        return cls(cls.SELECT, relation_name=relation_name, left_key=input_key)

    @classmethod
    def join(cls, left_key, right_key, predicates):
        """Join of two groups with the connecting predicates."""
        return cls(
            cls.JOIN, left_key=left_key, right_key=right_key, predicates=predicates
        )

    def identity(self):
        """Hashable identity used to deduplicate m-exprs in a group."""
        if self.kind == self.JOIN:
            return (self.kind, self.left_key, self.right_key)
        return (self.kind, self.relation_name, self.left_key)

    def __repr__(self):
        if self.kind == self.JOIN:
            return "MExpr(join %s x %s)" % (
                sorted(self.left_key[1]),
                sorted(self.right_key[1]),
            )
        return "MExpr(%s %s)" % (self.kind, self.relation_name)


def base_key(relation_name):
    """Memo key of the Get-Set group of a relation."""
    return ("base", relation_name)


def select_key(relation_name):
    """Memo key of the Select group of a relation."""
    return ("select", relation_name)


def join_key(relation_set):
    """Memo key of the join group over a relation set."""
    return ("join", frozenset(relation_set))


class Group:
    """One equivalence class of logical expressions."""

    __slots__ = ("key", "relations", "mexprs", "_identities", "winners",
                 "cardinality", "explored")

    def __init__(self, key, relations):
        self.key = key
        self.relations = frozenset(relations)
        self.mexprs = []
        self._identities = set()
        #: property key -> PlanEntry (or None when unsatisfiable)
        self.winners = {}
        #: output cardinality Interval, set lazily by the engine
        self.cardinality = None
        self.explored = False

    @property
    def kind(self):
        """One of ``base``, ``select``, ``join``."""
        return self.key[0]

    def add_mexpr(self, mexpr):
        """Add an m-expr unless an identical one is present.

        Returns the m-expr when added, ``None`` when duplicate — the
        memoization that keeps rule application finite.
        """
        identity = mexpr.identity()
        if identity in self._identities:
            return None
        self._identities.add(identity)
        self.mexprs.append(mexpr)
        return mexpr

    def __repr__(self):
        return "Group(%r, %d mexprs)" % (self.key, len(self.mexprs))


class Memo:
    """All groups of one optimization run."""

    def __init__(self):
        self._groups = {}

    def group(self, key):
        """Fetch an existing group."""
        try:
            return self._groups[key]
        except KeyError:
            raise OptimizationError("no memo group for key %r" % (key,)) from None

    def has_group(self, key):
        """True when the group exists."""
        return key in self._groups

    def get_or_create(self, key):
        """Fetch or create the group for a key.

        Returns ``(group, created)`` so callers can seed new groups.
        """
        group = self._groups.get(key)
        if group is not None:
            return group, False
        if key[0] == "join":
            relations = key[1]
        else:
            relations = frozenset((key[1],))
        group = Group(key, relations)
        self._groups[key] = group
        return group, True

    def groups(self):
        """All groups (no ordering guarantees)."""
        return list(self._groups.values())

    def group_count(self):
        """Number of groups created."""
        return len(self._groups)

    def mexpr_count(self):
        """Total m-exprs across all groups."""
        return sum(len(group.mexprs) for group in self._groups.values())

    def logical_tree_count(self, root_key):
        """Number of distinct logical operator trees the memo encodes.

        This is the "number of logical alternative plans considered"
        reported for the paper's five queries: it multiplies out the
        input-group choices of every m-expr below the root group.
        """
        cache = {}

        def count(key):
            cached = cache.get(key)
            if cached is not None:
                return cached
            cache[key] = 0  # guard against cycles (there are none)
            group = self.group(key)
            total = 0
            for mexpr in group.mexprs:
                if mexpr.kind == MExpr.JOIN:
                    total += count(mexpr.left_key) * count(mexpr.right_key)
                elif mexpr.kind == MExpr.SELECT:
                    total += count(mexpr.left_key)
                else:
                    total += 1
            cache[key] = total
            return total

        return count(root_key)

    def __repr__(self):
        return "Memo(%d groups, %d mexprs)" % (
            self.group_count(),
            self.mexpr_count(),
        )
