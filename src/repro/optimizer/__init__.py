"""The dynamic-plan optimizer: a Volcano-style search engine extended
with partially ordered (interval) costs and choose-plan insertion.

This package is the reproduction of the paper's primary contribution:

* :mod:`.memo` — groups of logically equivalent expressions with
  memoization (top-down dynamic programming);
* :mod:`.rules` — transformation rules (join commutativity and
  associativity, generating all bushy trees) and implementation rules
  (Table 1), plus the sort and choose-plan (robustness) enforcers;
* :mod:`.search` — the search engine handling incomparable costs:
  per (group, property) it retains the *set* of potentially optimal
  plans and links them with a choose-plan operator;
* :mod:`.optimizer` — the public facade: ``optimize_static``,
  ``optimize_dynamic``, ``optimize_runtime``, ``optimize_exhaustive``.
"""

from repro.optimizer.config import OptimizerConfig, OptimizerMode
from repro.optimizer.optimizer import (
    OptimizationResult,
    optimize_dynamic,
    optimize_exhaustive,
    optimize_runtime,
    optimize_static,
)
from repro.optimizer.properties import PhysicalProperty
from repro.optimizer.query import QuerySpec, canonical_signature, signature_digest
from repro.optimizer.search import SearchEngine, SearchStatistics

__all__ = [
    "OptimizationResult",
    "OptimizerConfig",
    "OptimizerMode",
    "PhysicalProperty",
    "QuerySpec",
    "SearchEngine",
    "SearchStatistics",
    "canonical_signature",
    "signature_digest",
    "optimize_dynamic",
    "optimize_exhaustive",
    "optimize_runtime",
    "optimize_static",
]
