"""Query specifications: the optimizer's normalized input.

A :class:`QuerySpec` captures a select-join query — the class of
queries in the paper's experiments — as a set of relations, at most
one selection predicate per relation, and a set of equi-join
predicates forming a join graph.  It can be built directly or derived
from a logical algebra tree of :class:`~repro.algebra.logical.GetSet`,
``Select``, and ``Join`` operators (selections must already be pushed
onto their relations, as in all the paper's queries).
"""

import hashlib

from repro.algebra.expressions import Literal, UserVariable
from repro.algebra.logical import (
    GetSet,
    Join,
    LogicalExpression,
    Project,
    Select,
)
from repro.common.errors import OptimizationError
from repro.cost.parameters import Parameter, ParameterSpace


def _operand_signature(operand):
    """Stable identity of a comparison operand."""
    if isinstance(operand, UserVariable):
        return ("var", operand.name)
    if isinstance(operand, Literal):
        return ("lit", repr(operand.value))
    return ("operand", repr(operand))


def _selection_signature(relation_name, predicate):
    """Stable identity of one selection predicate."""
    comparison = predicate.comparison
    if predicate.is_uncertain:
        certainty = (
            "uncertain",
            predicate.selectivity_parameter,
            float(predicate.selectivity_bounds.lower),
            float(predicate.selectivity_bounds.upper),
            float(predicate.expected_selectivity),
        )
    else:
        certainty = ("known", float(predicate.known_selectivity))
    return (
        relation_name,
        comparison.attribute,
        comparison.op.value,
        _operand_signature(comparison.operand),
        certainty,
    )


def canonical_signature(query):
    """Canonical structural identity of a query, for plan caching.

    Two queries share a signature exactly when a dynamic plan compiled
    for one is usable for the other against the same catalog: same
    relation set, same selection predicates (attribute, operator,
    operand, and selectivity description), same join predicates
    (orientation-normalized — an equi-join is symmetric), same
    projection, and the same unbound-parameter set.  The query *name*
    is deliberately excluded: it is presentation, not semantics.

    The signature is a nested tuple of primitives, so it is hashable,
    comparable, and stable across processes (no ``id()`` anywhere).
    """
    query = query if isinstance(query, QuerySpec) else QuerySpec.from_logical(query)
    selections = tuple(
        _selection_signature(relation_name, query.selections[relation_name])
        for relation_name in sorted(query.selections)
    )
    joins = tuple(
        sorted(
            tuple(sorted((p.left_attribute, p.right_attribute)))
            for p in query.join_predicates
        )
    )
    return (
        ("relations", tuple(sorted(query.relations))),
        ("selections", selections),
        ("joins", joins),
        ("projection", query.projection),
        ("memory_uncertain", query.memory_uncertain),
        ("unbound", tuple(query.parameter_space.uncertain_names())),
    )


def signature_digest(signature):
    """Short stable hex digest of a canonical signature."""
    return hashlib.sha256(repr(signature).encode("utf-8")).hexdigest()[:16]


class QuerySpec:
    """A normalized select-join query plus its parameter space."""

    def __init__(
        self,
        relations,
        selections=None,
        join_predicates=(),
        memory_uncertain=False,
        name=None,
        projection=None,
    ):
        self.relations = tuple(relations)
        if not self.relations:
            raise OptimizationError("a query needs at least one relation")
        if len(set(self.relations)) != len(self.relations):
            raise OptimizationError("duplicate relation in query (no self-joins)")
        self.selections = dict(selections or {})
        for relation_name in self.selections:
            if relation_name not in self.relations:
                raise OptimizationError(
                    "selection on %r but that relation is not in the query"
                    % relation_name
                )
        self.join_predicates = tuple(join_predicates)
        self.memory_uncertain = bool(memory_uncertain)
        self.name = name or "query"
        #: qualified attributes the query returns (None = all)
        self.projection = tuple(projection) if projection else None
        self._validate_join_graph()
        self.parameter_space = self._build_parameter_space()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_logical(cls, expression, memory_uncertain=False, name=None):
        """Normalize a logical algebra tree into a :class:`QuerySpec`.

        A single top-level :class:`~repro.algebra.logical.Project` is
        accepted as the query's output attribute list.
        """
        if not isinstance(expression, LogicalExpression):
            raise OptimizationError(
                "expected a logical expression, got %r" % (expression,)
            )
        projection = None
        if isinstance(expression, Project):
            projection = expression.attributes
            expression = expression.input
            if isinstance(expression, Project):
                raise OptimizationError("nested projections are not supported")
        relations = []
        selections = {}
        join_predicates = []
        cls._collect(expression, relations, selections, join_predicates)
        return cls(
            relations,
            selections,
            join_predicates,
            memory_uncertain=memory_uncertain,
            name=name,
            projection=projection,
        )

    @classmethod
    def _collect(cls, expression, relations, selections, join_predicates):
        if isinstance(expression, GetSet):
            relations.append(expression.relation_name)
            return expression.relation_name
        if isinstance(expression, Select):
            below = cls._collect(
                expression.input, relations, selections, join_predicates
            )
            if below is None:
                raise OptimizationError(
                    "selections must be pushed down onto single relations; "
                    "found Select above a join"
                )
            if below in selections:
                raise OptimizationError(
                    "at most one selection predicate per relation "
                    "(relation %r has two)" % below
                )
            selections[below] = expression.predicate
            return below
        if isinstance(expression, Join):
            cls._collect(expression.left, relations, selections, join_predicates)
            cls._collect(expression.right, relations, selections, join_predicates)
            join_predicates.extend(expression.predicates)
            return None
        if isinstance(expression, Project):
            raise OptimizationError(
                "projections are only supported at the top of the query"
            )
        raise OptimizationError("unsupported logical operator %r" % expression)

    def _validate_join_graph(self):
        relation_set = set(self.relations)
        for predicate in self.join_predicates:
            for attribute in (predicate.left_attribute, predicate.right_attribute):
                relation = attribute.split(".", 1)[0]
                if relation not in relation_set:
                    raise OptimizationError(
                        "join predicate %r references unknown relation %r"
                        % (predicate, relation)
                    )
        if len(self.relations) > 1 and not self.is_connected(
            frozenset(self.relations)
        ):
            raise OptimizationError(
                "the join graph is disconnected; cross products are not "
                "part of the experimental algebra"
            )

    def _build_parameter_space(self):
        parameters = []
        for relation_name in self.relations:
            predicate = self.selections.get(relation_name)
            if predicate is not None and predicate.is_uncertain:
                parameters.append(
                    Parameter(
                        predicate.selectivity_parameter,
                        tuple(predicate.selectivity_bounds),
                        predicate.expected_selectivity,
                        uncertain=True,
                    )
                )
        space = ParameterSpace(parameters)
        space.add(Parameter.memory(uncertain=self.memory_uncertain))
        return space

    # ------------------------------------------------------------------
    # Join-graph queries
    # ------------------------------------------------------------------

    def _relation_of(self, attribute):
        return attribute.split(".", 1)[0]

    def cross_predicates(self, left_set, right_set):
        """Join predicates connecting two disjoint relation sets."""
        result = []
        for predicate in self.join_predicates:
            left_rel = self._relation_of(predicate.left_attribute)
            right_rel = self._relation_of(predicate.right_attribute)
            if left_rel in left_set and right_rel in right_set:
                result.append(predicate)
            elif left_rel in right_set and right_rel in left_set:
                result.append(predicate.flipped())
        return result

    def internal_predicates(self, relation_set):
        """Join predicates with both sides inside ``relation_set``."""
        result = []
        for predicate in self.join_predicates:
            left_rel = self._relation_of(predicate.left_attribute)
            right_rel = self._relation_of(predicate.right_attribute)
            if left_rel in relation_set and right_rel in relation_set:
                result.append(predicate)
        return result

    def is_connected(self, relation_set):
        """True when the join graph restricted to the set is connected."""
        relation_set = set(relation_set)
        if len(relation_set) <= 1:
            return True
        adjacency = {relation: set() for relation in relation_set}
        for predicate in self.join_predicates:
            left_rel = self._relation_of(predicate.left_attribute)
            right_rel = self._relation_of(predicate.right_attribute)
            if left_rel in relation_set and right_rel in relation_set:
                adjacency[left_rel].add(right_rel)
                adjacency[right_rel].add(left_rel)
        start = next(iter(relation_set))
        seen = {start}
        frontier = [start]
        while frontier:
            relation = frontier.pop()
            for neighbour in adjacency[relation]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return seen == relation_set

    def connected_splits(self, relation_set):
        """All ordered splits ``(A, B)`` of a connected set into two
        connected, non-empty halves joined by at least one predicate.

        Used by tests as the ground truth the rule closure must reach,
        and by the exhaustive enumerator.
        """
        relation_list = sorted(relation_set)
        count = len(relation_list)
        results = []
        if count < 2:
            return results
        for mask in range(1, 2**count - 1):
            left = frozenset(
                relation_list[i] for i in range(count) if mask & (1 << i)
            )
            right = frozenset(relation_set) - left
            if not self.is_connected(left) or not self.is_connected(right):
                continue
            if not self.cross_predicates(left, right):
                continue
            results.append((left, right))
        return results

    def selection_for(self, relation_name):
        """The selection predicate on a relation, or ``None``."""
        return self.selections.get(relation_name)

    def canonical_signature(self):
        """Canonical structural identity (see :func:`canonical_signature`)."""
        return canonical_signature(self)

    def signature(self):
        """Hex digest of the canonical signature — the plan-cache key."""
        return signature_digest(self.canonical_signature())

    def uncertain_variable_count(self):
        """Number of uncertain parameters (x-axis of the figures)."""
        return self.parameter_space.uncertain_count()

    def __repr__(self):
        return "QuerySpec(%s: %d relations, %d joins, %d uncertain)" % (
            self.name,
            len(self.relations),
            len(self.join_predicates),
            self.uncertain_variable_count(),
        )
