"""Scenario 1: traditional compile-time optimization (static plans).

Optimize once with expected parameter values; every invocation then
activates the small static access module (catalog validation plus
module read) and executes the same plan, however unsuitable it is for
the actual bindings.
"""

from repro.common.units import CATALOG_VALIDATION_SECONDS
from repro.executor.access_module import AccessModule
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.optimizer import optimize_static
from repro.scenarios.scenario import (
    InvocationRecord,
    ScenarioResult,
    predicted_execution_seconds,
)


class StaticPlanScenario:
    """Compile once with expected values, run the static plan always."""

    name = "static"

    def __init__(self, workload, config=None, cpu_scale=1.0):
        self.workload = workload
        self.config = config if config is not None else OptimizerConfig.static()
        #: measured-CPU to simulated-seconds factor (see cost.calibration)
        self.cpu_scale = float(cpu_scale)
        self.result = optimize_static(workload.catalog, workload.query, self.config)
        self.module = AccessModule.from_plan(
            self.result.plan, workload.query.name
        )

    @property
    def plan(self):
        """The single static plan."""
        return self.result.plan

    def activation_seconds(self):
        """Time ``b``: catalog validation plus module read."""
        return CATALOG_VALIDATION_SECONDS + self.module.read_seconds()

    def invoke(self, bindings):
        """One invocation: activation plus (predicted) execution."""
        execution = predicted_execution_seconds(
            self.plan,
            self.workload.catalog,
            self.workload.query.parameter_space,
            bindings,
        )
        return InvocationRecord(0.0, self.activation_seconds(), execution)

    def run_series(self, binding_series):
        """All invocations of a binding series, aggregated."""
        invocations = [self.invoke(bindings) for bindings in binding_series]
        return ScenarioResult(
            self.name,
            self.result.statistics.optimization_seconds * self.cpu_scale,
            invocations,
            self.module.node_count,
            extra={"optimizer_statistics": self.result.statistics.as_dict()},
        )
