"""Scenario 2: complete optimization at run time ("brute force").

Every invocation optimizes the query from scratch with the true
bindings — no activation cost (the plan goes straight from optimizer
to executor), but the full optimization time ``a`` is paid each time.
"""

from repro.optimizer.config import OptimizerConfig
from repro.optimizer.optimizer import optimize_runtime
from repro.scenarios.scenario import (
    InvocationRecord,
    ScenarioResult,
    predicted_execution_seconds,
)


class RunTimeOptimizationScenario:
    """Re-optimize with actual bindings before every invocation."""

    name = "run-time-optimization"

    def __init__(self, workload, config=None, cpu_scale=1.0, tracer=None):
        self.workload = workload
        self.config = config if config is not None else OptimizerConfig.static()
        #: measured-CPU to simulated-seconds factor (see cost.calibration)
        self.cpu_scale = float(cpu_scale)
        #: Optional tracer; every per-invocation optimization records
        #: its search phases (see repro.optimizer.optimizer).
        self.tracer = tracer
        self.last_result = None

    def invoke(self, bindings):
        """One invocation: optimize (measured) then execute (predicted)."""
        result = optimize_runtime(
            self.workload.catalog,
            self.workload.query,
            bindings,
            self.config,
            tracer=self.tracer,
        )
        self.last_result = result
        execution = predicted_execution_seconds(
            result.plan,
            self.workload.catalog,
            self.workload.query.parameter_space,
            bindings,
        )
        return InvocationRecord(
            result.statistics.optimization_seconds * self.cpu_scale,
            0.0,
            execution,
        )

    def run_series(self, binding_series):
        """All invocations of a binding series, aggregated."""
        invocations = [self.invoke(bindings) for bindings in binding_series]
        nodes = self.last_result.node_count() if self.last_result else 0
        return ScenarioResult(self.name, 0.0, invocations, nodes)
