"""Choosing a compilation strategy (the paper's open characterization).

Section 6 closes: "we do not advocate to use dynamic plans at all
times and for all queries ... We plan on characterizing those cases
more thoroughly in the future."  This module provides that
characterization as an advisor usable at compile time: given a query,
the catalogs, and the expected number of invocations, it estimates the
total effort of the three scenarios — using only compile-time
information — and recommends one.

Estimates, in the paper's Figure 3 notation:

* ``a``/``e`` — measured optimization times (static/dynamic);
* ``b``/``f`` — activation: catalog validation + module read, plus for
  dynamic plans a measured decision pass (scaled to the simulated
  machine, see :mod:`repro.cost.calibration`);
* ``c`` — the static plan's cost interval midpoint under the
  compile-time bounds (its expected execution over the parameter
  range);
* ``g = d`` — the dynamic plan's cost envelope midpoint (the expected
  execution of the per-binding optimum).

These are estimates, not measurements over true bindings — exactly the
information an optimizer has when it must pick a strategy.
"""

from repro.common.units import CATALOG_VALIDATION_SECONDS
from repro.cost.calibration import DEFAULT_CPU_SCALE
from repro.cost.formulas import CostModel
from repro.cost.parameters import Bindings, Valuation
from repro.executor.access_module import AccessModule
from repro.executor.startup import resolve_dynamic_plan
from repro.optimizer.optimizer import optimize_dynamic, optimize_static


class StrategyRecommendation:
    """The advisor's verdict with its per-strategy estimates."""

    def __init__(self, strategy, totals, per_invocation, components,
                 invocations):
        self.strategy = strategy
        self.totals = totals
        self.per_invocation = per_invocation
        self.components = components
        self.invocations = invocations

    def rationale(self):
        """A one-paragraph justification of the recommendation."""
        ordered = sorted(self.totals.items(), key=lambda item: item[1])
        lines = [
            "for %d expected invocation(s), estimated total efforts are:"
            % self.invocations
        ]
        for name, total in ordered:
            lines.append("  %-22s %.3f s" % (name, total))
        lines.append("recommended: %s" % self.strategy)
        return "\n".join(lines)

    def __repr__(self):
        return "StrategyRecommendation(%s, N=%d)" % (
            self.strategy,
            self.invocations,
        )


def recommend_strategy(catalog, query, expected_invocations=100,
                       cpu_scale=DEFAULT_CPU_SCALE):
    """Estimate the three scenarios' costs and recommend a strategy.

    Returns a :class:`StrategyRecommendation` whose ``strategy`` is one
    of ``"static"``, ``"dynamic"``, ``"run-time optimization"``.
    """
    invocations = max(1, int(expected_invocations))

    static_result = optimize_static(catalog, query)
    dynamic_result = optimize_dynamic(catalog, query)
    a = static_result.statistics.optimization_seconds * cpu_scale
    e = dynamic_result.statistics.optimization_seconds * cpu_scale

    static_module = AccessModule.from_plan(static_result.plan, query.name)
    dynamic_module = AccessModule.from_plan(dynamic_result.plan, query.name)
    b = CATALOG_VALIDATION_SECONDS + static_module.read_seconds()

    # One decision pass at the expected bindings, for the CPU estimate.
    _, report = resolve_dynamic_plan(
        dynamic_result.plan, catalog, query.parameter_space, Bindings()
    )
    f = (
        CATALOG_VALIDATION_SECONDS
        + dynamic_module.read_seconds()
        + report.cpu_seconds * cpu_scale
    )

    bounds_model = CostModel(catalog, Valuation.bounds(query.parameter_space))
    c = bounds_model.evaluate(static_result.plan).cost.midpoint
    g = bounds_model.evaluate(dynamic_result.plan).cost.midpoint

    totals = {
        "static": a + invocations * (b + c),
        "dynamic": e + invocations * (f + g),
        "run-time optimization": invocations * (a + g),
    }
    per_invocation = {
        "static": b + c,
        "dynamic": f + g,
        "run-time optimization": a + g,
    }
    components = {
        "a": a,
        "b": b,
        "c": c,
        "e": e,
        "f": f,
        "g": g,
        "static_nodes": static_module.node_count,
        "dynamic_nodes": dynamic_module.node_count,
    }
    strategy = min(totals, key=lambda name: totals[name])
    # With no uncertainty the dynamic plan degenerates; prefer the
    # simpler static plan on (near-)ties.
    if totals[strategy] >= totals["static"] * 0.999:
        strategy = "static"
    return StrategyRecommendation(
        strategy, totals, per_invocation, components, invocations
    )
