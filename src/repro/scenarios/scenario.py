"""Shared scenario plumbing: invocation records and result aggregates.

Per the paper's footnote 4, *execution times are those predicted by
the optimizer* under the actual run-time bindings — this isolates the
quality of the search strategy from selectivity-estimation noise.
:func:`predicted_execution_seconds` computes exactly that: the plan's
cost functions evaluated at the bound parameter values.
"""

from repro.algebra.physical import ChoosePlan
from repro.common.errors import PlanError
from repro.cost.formulas import CostModel
from repro.cost.parameters import Valuation


def predicted_execution_seconds(plan, catalog, parameter_space, bindings):
    """Execution time of a *static* plan under concrete bindings.

    The plan must contain no choose-plan operators (resolve dynamic
    plans first); the result is the point value of the plan's cost
    under the run-time valuation.
    """
    for node in plan.walk_unique():
        if isinstance(node, ChoosePlan):
            raise PlanError(
                "predicted_execution_seconds needs a resolved plan; "
                "activate the dynamic plan first"
            )
    valuation = Valuation.runtime(parameter_space, bindings)
    model = CostModel(catalog, valuation)
    return model.evaluate(plan).cost.lower


class InvocationRecord:
    """Timings of one query invocation under one scenario."""

    __slots__ = ("optimize_seconds", "activation_seconds", "execution_seconds")

    def __init__(self, optimize_seconds, activation_seconds, execution_seconds):
        self.optimize_seconds = optimize_seconds
        self.activation_seconds = activation_seconds
        self.execution_seconds = execution_seconds

    @property
    def run_time_effort(self):
        """Everything paid at run time for this invocation."""
        return (
            self.optimize_seconds
            + self.activation_seconds
            + self.execution_seconds
        )

    def __repr__(self):
        return "InvocationRecord(opt=%.4f, act=%.4f, exec=%.4f)" % (
            self.optimize_seconds,
            self.activation_seconds,
            self.execution_seconds,
        )


class ScenarioResult:
    """Aggregate of one scenario over a series of invocations."""

    def __init__(self, name, compile_seconds, invocations, plan_nodes,
                 extra=None):
        self.name = name
        self.compile_seconds = compile_seconds
        self.invocations = list(invocations)
        self.plan_nodes = plan_nodes
        self.extra = dict(extra or {})

    @property
    def invocation_count(self):
        """Number of invocations recorded."""
        return len(self.invocations)

    @property
    def average_execution_seconds(self):
        """Mean execution time across invocations."""
        if not self.invocations:
            return 0.0
        return sum(r.execution_seconds for r in self.invocations) / len(
            self.invocations
        )

    @property
    def average_activation_seconds(self):
        """Mean activation (start-up) time across invocations."""
        if not self.invocations:
            return 0.0
        return sum(r.activation_seconds for r in self.invocations) / len(
            self.invocations
        )

    @property
    def average_optimize_seconds(self):
        """Mean per-invocation optimization time (run-time scenario)."""
        if not self.invocations:
            return 0.0
        return sum(r.optimize_seconds for r in self.invocations) / len(
            self.invocations
        )

    @property
    def average_run_time_effort(self):
        """Mean per-invocation total run-time effort."""
        if not self.invocations:
            return 0.0
        return sum(r.run_time_effort for r in self.invocations) / len(
            self.invocations
        )

    def total_effort(self):
        """Compile-time effort plus all run-time effort."""
        return self.compile_seconds + sum(
            r.run_time_effort for r in self.invocations
        )

    def __repr__(self):
        return (
            "ScenarioResult(%s: compile=%.3fs, avg_exec=%.3fs, "
            "avg_act=%.3fs, n=%d)"
            % (
                self.name,
                self.compile_seconds,
                self.average_execution_seconds,
                self.average_activation_seconds,
                self.invocation_count,
            )
        )
