"""Scenario 3: dynamic plans (the paper's proposal).

Optimize once into a dynamic plan with choose-plan operators; every
invocation activates the module — catalog validation, module read
(larger than a static module), choose-plan decision procedures (CPU,
measured) — and executes the chosen alternative.
"""

from repro.common.units import CATALOG_VALIDATION_SECONDS
from repro.executor.access_module import AccessModule
from repro.executor.startup import resolve_dynamic_plan
from repro.observability.trace import maybe_phase
from repro.optimizer.config import OptimizerConfig
from repro.optimizer.optimizer import optimize_dynamic
from repro.scenarios.scenario import (
    InvocationRecord,
    ScenarioResult,
    predicted_execution_seconds,
)


class DynamicPlanScenario:
    """Compile once into a dynamic plan, choose at start-up time."""

    name = "dynamic"

    def __init__(self, workload, config=None, startup_branch_and_bound=False,
                 cpu_scale=1.0, tracer=None):
        self.workload = workload
        self.config = config if config is not None else OptimizerConfig.dynamic()
        self.startup_branch_and_bound = startup_branch_and_bound
        #: measured-CPU to simulated-seconds factor (see cost.calibration)
        self.cpu_scale = float(cpu_scale)
        #: Optional tracer recording the compile and activation phases.
        self.tracer = tracer
        self.result = optimize_dynamic(
            workload.catalog, workload.query, self.config, tracer=tracer
        )
        self.module = AccessModule.from_plan(
            self.result.plan, workload.query.name
        )
        self.last_report = None
        self.last_chosen = None

    @property
    def plan(self):
        """The dynamic plan (with choose-plan operators)."""
        return self.result.plan

    def invoke(self, bindings):
        """One invocation: activate (decide) then execute (predicted)."""
        with maybe_phase(self.tracer, "scenario:dynamic:activate") as span:
            chosen, report = resolve_dynamic_plan(
                self.plan,
                self.workload.catalog,
                self.workload.query.parameter_space,
                bindings,
                branch_and_bound=self.startup_branch_and_bound,
            )
            if span is not None:
                span.meta["decisions"] = report.decisions
                span.meta["cost_evaluations"] = report.cost_evaluations
        self.last_report = report
        self.last_chosen = chosen
        activation = (
            CATALOG_VALIDATION_SECONDS
            + self.module.read_seconds()
            + report.cpu_seconds * self.cpu_scale
        )
        execution = predicted_execution_seconds(
            chosen,
            self.workload.catalog,
            self.workload.query.parameter_space,
            bindings,
        )
        return InvocationRecord(0.0, activation, execution)

    def run_series(self, binding_series):
        """All invocations of a binding series, aggregated."""
        invocations = [self.invoke(bindings) for bindings in binding_series]
        return ScenarioResult(
            self.name,
            self.result.statistics.optimization_seconds * self.cpu_scale,
            invocations,
            self.module.node_count,
            extra={
                "choose_plan_count": self.result.choose_plan_count(),
                "optimizer_statistics": self.result.statistics.as_dict(),
            },
        )
