"""Conditional re-optimization (the [CAK81]/[CAB93] variant, Section 2).

System R re-optimized plans that became *infeasible*; the AS/400 also
re-optimizes plans believed *suboptimal*.  The paper's criticism: the
trigger is unreliable, so such systems "typically perform many more
re-optimizations than truly necessary" — in the extreme, alternating
run-time situations force a re-optimization on every invocation even
though only two distinct plans are ever used.

This scenario models the approach so the criticism is measurable: the
plan is re-optimized whenever any uncertain parameter drifts from the
value seen at the last optimization by more than ``tolerance``
(relative to the parameter's bound width).
"""

from repro.optimizer.config import OptimizerConfig
from repro.optimizer.optimizer import optimize_runtime, optimize_static
from repro.scenarios.scenario import (
    InvocationRecord,
    ScenarioResult,
    predicted_execution_seconds,
)


class ConditionalReoptimizationScenario:
    """Keep the current plan until parameters drift, then re-optimize."""

    name = "conditional-reoptimization"

    def __init__(self, workload, tolerance=0.2, config=None, cpu_scale=1.0):
        self.workload = workload
        self.tolerance = float(tolerance)
        self.config = config if config is not None else OptimizerConfig.static()
        #: measured-CPU to simulated-seconds factor (see cost.calibration)
        self.cpu_scale = float(cpu_scale)
        initial = optimize_static(workload.catalog, workload.query, self.config)
        self.current_plan = initial.plan
        self.compile_seconds = initial.statistics.optimization_seconds
        self.anchor = {
            name: workload.query.parameter_space.get(name).expected
            for name in workload.query.parameter_space.uncertain_names()
        }
        self.reoptimization_count = 0

    def _drifted(self, bindings):
        space = self.workload.query.parameter_space
        for name, anchor_value in self.anchor.items():
            if not bindings.has_parameter(name):
                continue
            bounds = space.get(name).bounds
            width = bounds.width or 1.0
            if abs(bindings.parameter(name) - anchor_value) / width > self.tolerance:
                return True
        return False

    def invoke(self, bindings):
        """One invocation, re-optimizing when parameters drifted."""
        optimize_seconds = 0.0
        if self._drifted(bindings):
            result = optimize_runtime(
                self.workload.catalog, self.workload.query, bindings, self.config
            )
            self.current_plan = result.plan
            optimize_seconds = (
                result.statistics.optimization_seconds * self.cpu_scale
            )
            self.reoptimization_count += 1
            for name in list(self.anchor):
                if bindings.has_parameter(name):
                    self.anchor[name] = bindings.parameter(name)
        execution = predicted_execution_seconds(
            self.current_plan,
            self.workload.catalog,
            self.workload.query.parameter_space,
            bindings,
        )
        return InvocationRecord(optimize_seconds, 0.0, execution)

    def run_series(self, binding_series):
        """All invocations of a binding series, aggregated."""
        invocations = [self.invoke(bindings) for bindings in binding_series]
        return ScenarioResult(
            self.name,
            self.compile_seconds * self.cpu_scale,
            invocations,
            self.current_plan.node_count(),
            extra={"reoptimizations": self.reoptimization_count},
        )
