"""Break-even analysis (paper Section 6).

``N_break-even`` between dynamic and static plans is the smallest N
with ``e + N(f + g) < a + N(b + c)``; between dynamic plans and
run-time optimization it is the smallest N with
``e + N(f + g) < N(a + d)``, which the paper simplifies (using
``g = d``) to ``ceil(e / (a - f))``.
"""

import math


def breakeven_static_vs_dynamic(static_result, dynamic_result):
    """Invocations needed for a dynamic plan to beat a static plan.

    Returns ``None`` when the dynamic plan never catches up (its
    per-invocation effort is not smaller).
    """
    extra_compile = (
        dynamic_result.compile_seconds - static_result.compile_seconds
    )
    static_per_invocation = (
        static_result.average_activation_seconds
        + static_result.average_execution_seconds
    )
    dynamic_per_invocation = (
        dynamic_result.average_activation_seconds
        + dynamic_result.average_execution_seconds
    )
    advantage = static_per_invocation - dynamic_per_invocation
    if advantage <= 0:
        return None
    if extra_compile <= 0:
        return 1
    return max(1, math.ceil(extra_compile / advantage))


def breakeven_runtime_vs_dynamic(runtime_result, dynamic_result):
    """Invocations needed for a dynamic plan to beat run-time
    optimization.

    Uses the paper's formula ``ceil(e / (a - f))`` with ``e`` the
    dynamic optimization time, ``a`` the per-invocation optimization
    time of the run-time scenario, and ``f`` the dynamic activation
    time.  Returns ``None`` when activation costs as much as
    optimizing (no break-even).
    """
    compile_cost = dynamic_result.compile_seconds
    per_invocation_saving = (
        runtime_result.average_optimize_seconds
        - dynamic_result.average_activation_seconds
    )
    if per_invocation_saving <= 0:
        return None
    return max(1, math.ceil(compile_cost / per_invocation_saving))
