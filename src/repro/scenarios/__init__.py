"""Optimization scenarios (Figure 3 of the paper).

Three ways to cope with compile-time uncertainty, each modelled as a
sequence of query invocations:

* **static** — optimize once at compile time (``a``), then per
  invocation activate (``b``) and execute (``c_i``);
* **run-time optimization** — re-optimize with true bindings before
  every invocation (``a`` each time) and execute (``d_i``);
* **dynamic plans** — optimize once into a dynamic plan (``e``), per
  invocation activate it — read the bigger module, evaluate the
  choose-plan decisions — (``f``) and execute the chosen plan
  (``g_i``), with the paper's guarantee ``g_i = d_i``.

Scenario results feed the Figure 4-8 experiments and the break-even
analysis of Section 6.
"""

from repro.scenarios.advisor import StrategyRecommendation, recommend_strategy
from repro.scenarios.breakeven import (
    breakeven_runtime_vs_dynamic,
    breakeven_static_vs_dynamic,
)
from repro.scenarios.dynamic_scenario import DynamicPlanScenario
from repro.scenarios.reoptimization import ConditionalReoptimizationScenario
from repro.scenarios.runtime_scenario import RunTimeOptimizationScenario
from repro.scenarios.scenario import (
    InvocationRecord,
    ScenarioResult,
    predicted_execution_seconds,
)
from repro.scenarios.static_scenario import StaticPlanScenario

__all__ = [
    "ConditionalReoptimizationScenario",
    "StrategyRecommendation",
    "recommend_strategy",
    "DynamicPlanScenario",
    "InvocationRecord",
    "RunTimeOptimizationScenario",
    "ScenarioResult",
    "StaticPlanScenario",
    "breakeven_runtime_vs_dynamic",
    "breakeven_static_vs_dynamic",
    "predicted_execution_seconds",
]
