"""The chaos harness: replay workloads under a named fault profile.

For each paper query the harness runs one invocation twice, from
identically seeded databases: once fault-free (the baseline) and once
through a :class:`~repro.service.service.QueryService` with a
:class:`~repro.resilience.faults.FaultInjector` installed.  A
*recoverable* profile must complete — via retries and mid-run plan
degradation — with the same result multiset as the baseline; a
profile containing permanent faults must fail fast with the typed
error after at most one execution attempt.

Determinism is the contract the CI chaos-smoke job enforces: the
report (:meth:`ChaosReport.to_json`) contains no wall-clock values,
backoff sleeps are disabled, and every random draw is seeded, so two
runs with the same profile, seed, and mode produce byte-identical
reports.
"""

import hashlib
import json

from repro.catalog import populate_database
from repro.common.errors import ServiceExecutionError
from repro.resilience.faults import FaultInjector, fault_profile
from repro.resilience.policy import ResiliencePolicy, RetryPolicy
from repro.storage.database import Database
from repro.workloads import paper_workload, random_bindings, skewed_bindings

#: Queries the harness replays when none are named.
DEFAULT_QUERIES = (1, 2, 3, 4, 5)


def rows_digest(records):
    """Order-insensitive SHA-256 digest of a result's rows.

    Degradation may finish a query on a *different* (re-decided or
    fallback) plan whose join order emits the same rows in a different
    sequence, so equivalence is over the result multiset: each row is
    serialized from its sorted field items, the serializations are
    sorted, and the concatenation is hashed.
    """
    serialized = sorted(
        repr(sorted(record.as_dict().items())) for record in records
    )
    digest = hashlib.sha256()
    for row in serialized:
        digest.update(row.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class QueryOutcome:
    """What one query did under the profile, versus its baseline."""

    def __init__(self, number, name, expected, baseline_rows, baseline_digest):
        self.number = number
        self.name = name
        #: ``"complete"`` or ``"fail-fast"``.
        self.expected = expected
        self.baseline_rows = baseline_rows
        self.baseline_digest = baseline_digest
        self.outcome = None
        self.rows = None
        self.digest = None
        self.rows_match = None
        self.failure = None
        self.attempts = None
        self.injector = None
        self.resilience = None

    @property
    def passed(self):
        """Whether the query met the profile's expectation."""
        if self.expected == "complete":
            return self.outcome == "completed" and bool(self.rows_match)
        return (
            self.outcome == "failed"
            and self.failure is not None
            and self.failure["type"] == "PermanentIOError"
            and self.attempts == 1
        )

    def to_dict(self):
        """Plain-data form, deterministic for a given profile and seed."""
        return {
            "number": self.number,
            "query": self.name,
            "expected": self.expected,
            "outcome": self.outcome,
            "baseline_rows": self.baseline_rows,
            "baseline_digest": self.baseline_digest,
            "rows": self.rows,
            "digest": self.digest,
            "rows_match": self.rows_match,
            "failure": self.failure,
            "attempts": self.attempts,
            "injector": self.injector,
            "resilience": self.resilience,
            "passed": self.passed,
        }


class ChaosReport:
    """The harness's verdict over a whole workload."""

    def __init__(self, profile, seed, execution_mode, outcomes,
                 reopt=None, skew=None):
        self.profile = profile
        self.seed = seed
        self.execution_mode = execution_mode
        self.outcomes = list(outcomes)
        #: Mid-query re-optimization policy dict, or None when off.
        self.reopt = reopt
        #: ``(declared, actual)`` selectivity skew, or None.
        self.skew = skew

    @property
    def passed(self):
        """Whether every query met the profile's expectation."""
        return all(outcome.passed for outcome in self.outcomes)

    def to_dict(self):
        """Plain-data form (no wall-clock values anywhere)."""
        return {
            "profile": self.profile.to_dict(),
            "seed": self.seed,
            "execution_mode": self.execution_mode,
            "reopt": self.reopt,
            "skew": list(self.skew) if self.skew is not None else None,
            "queries": [outcome.to_dict() for outcome in self.outcomes],
            "passed": self.passed,
        }

    def to_json(self):
        """Canonical JSON: sorted keys, so equal reports are equal bytes."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self):
        """Human-readable summary table."""
        lines = [
            "chaos profile %r (seed %d, %s mode): %s"
            % (
                self.profile.name,
                self.seed,
                self.execution_mode,
                "PASS" if self.passed else "FAIL",
            )
        ]
        for outcome in self.outcomes:
            if outcome.outcome == "completed":
                detail = "%d rows, match=%s" % (
                    outcome.rows,
                    outcome.rows_match,
                )
            else:
                detail = "failed: %s after %r attempt(s)" % (
                    outcome.failure["type"],
                    outcome.attempts,
                )
            counts = outcome.resilience or {}
            lines.append(
                "  %-12s %-9s [%s]  %s  "
                "(retries=%d degradations=%d fallbacks=%d timeouts=%d)"
                % (
                    outcome.name,
                    "pass" if outcome.passed else "FAIL",
                    outcome.expected,
                    detail,
                    counts.get("transient_retries", 0),
                    counts.get("degradations", 0),
                    counts.get("fallback_activations", 0),
                    counts.get("timeouts", 0),
                )
            )
        return "\n".join(lines)

    def __repr__(self):
        return "ChaosReport(%r, %d queries, passed=%s)" % (
            self.profile.name,
            len(self.outcomes),
            self.passed,
        )


def _fresh_service(workload, data_seed, resilience):
    """A single-use service over a freshly populated database."""
    from repro.service.service import QueryService

    database = Database(workload.catalog)
    populate_database(database, seed=data_seed)
    service = QueryService(
        database,
        max_workers=1,
        execute=True,
        resilience=resilience,
    )
    return database, service


def run_chaos(profile_name, query_numbers=DEFAULT_QUERIES, seed=0,
              execution_mode="row", data_seed=11, max_retries=3,
              max_degradations=2, reopt=None, skew=None):
    """Replay the paper queries under a named profile; a ChaosReport.

    Each query gets its own baseline and faulty databases (identically
    seeded) and its own injector, so faults in one query cannot leak
    operations into another.  Backoff delays are zeroed and sleeps are
    no-ops: the harness tests *outcomes*, not schedules.

    ``reopt`` (a :class:`~repro.executor.midquery.ReoptPolicy` or spec
    string) routes the *faulty* service's executions through mid-query
    re-optimization, so injected faults land during checkpoint drains
    and re-decision passes; the baseline stays plain, which keeps
    ``rows_match`` meaningful — re-optimization must never change the
    result multiset.  ``skew`` is an optional ``(declared, actual)``
    selectivity pair replacing the random bindings with lying ones
    (see :func:`~repro.workloads.bindings.skewed_bindings`), forcing
    observed cardinalities away from their estimates so re-decisions
    actually switch plans under fault pressure.
    """
    from repro.executor.midquery import ReoptPolicy

    profile = fault_profile(profile_name)
    if reopt is not None and not isinstance(reopt, ReoptPolicy):
        reopt = ReoptPolicy.parse(reopt)
    expects_failure = any(rule.kind == "permanent" for rule in profile.rules)
    expected = "fail-fast" if expects_failure else "complete"
    outcomes = []
    for number in query_numbers:
        workload = paper_workload(number, memory_uncertain=True)
        if skew is not None:
            declared, actual = skew
            bindings = skewed_bindings(
                workload, declared=declared, actual=actual, seed=seed
            )
        else:
            bindings = random_bindings(workload, seed=seed, run_index=0)

        baseline_db, baseline_service = _fresh_service(
            workload, data_seed, ResiliencePolicy()
        )
        try:
            baseline = baseline_service.run(
                workload.query, bindings, execution_mode=execution_mode
            )
        finally:
            baseline_service.shutdown()
        outcome = QueryOutcome(
            number,
            workload.name,
            expected,
            baseline.execution.row_count,
            rows_digest(baseline.execution.records),
        )

        resilience = ResiliencePolicy(
            retry=RetryPolicy(
                max_retries=max_retries, base_delay=0.0, jitter=0.0, seed=seed
            ),
            max_degradations=max_degradations,
            sleep=lambda _seconds: None,
        )
        faulty_db, faulty_service = _fresh_service(
            workload, data_seed, resilience
        )
        injector = faulty_db.install_fault_injector(
            FaultInjector(profile, seed=seed)
        )
        try:
            try:
                result = faulty_service.run(
                    workload.query,
                    bindings.copy(),
                    execution_mode=execution_mode,
                    reopt_policy=reopt,
                )
            except ServiceExecutionError as error:
                outcome.outcome = "failed"
                outcome.failure = {
                    "type": type(error.cause).__name__,
                    "message": str(error.cause),
                }
                outcome.attempts = error.attempts
            else:
                outcome.outcome = "completed"
                outcome.rows = result.execution.row_count
                outcome.digest = rows_digest(result.execution.records)
                outcome.rows_match = outcome.digest == outcome.baseline_digest
            outcome.injector = injector.snapshot()
            outcome.resilience = faulty_service.resilience_counts()
        finally:
            faulty_service.shutdown()
        outcomes.append(outcome)
    return ChaosReport(
        profile,
        seed,
        execution_mode,
        outcomes,
        reopt=reopt.to_dict() if reopt is not None and reopt.active else None,
        skew=tuple(skew) if skew is not None else None,
    )
