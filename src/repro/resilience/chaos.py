"""The chaos harness: replay workloads under a named fault profile.

For each paper query the harness runs one invocation twice, from
identically seeded databases: once fault-free (the baseline) and once
through a :class:`~repro.service.service.QueryService` with a
:class:`~repro.resilience.faults.FaultInjector` installed.  A
*recoverable* profile must complete — via retries and mid-run plan
degradation — with the same result multiset as the baseline; a
profile containing permanent faults must fail fast with the typed
error after at most one execution attempt.

Determinism is the contract the CI chaos-smoke job enforces: the
report (:meth:`ChaosReport.to_json`) contains no wall-clock values,
backoff sleeps are disabled, and every random draw is seeded, so two
runs with the same profile, seed, and mode produce byte-identical
reports.
"""

import hashlib
import json

from repro.catalog import populate_database
from repro.common.errors import ServiceExecutionError
from repro.resilience.faults import FaultInjector, fault_profile
from repro.resilience.policy import ResiliencePolicy, RetryPolicy
from repro.storage.database import Database
from repro.workloads import paper_workload, random_bindings, skewed_bindings

#: Queries the harness replays when none are named.
DEFAULT_QUERIES = (1, 2, 3, 4, 5)


def rows_digest(records):
    """Order-insensitive SHA-256 digest of a result's rows.

    Degradation may finish a query on a *different* (re-decided or
    fallback) plan whose join order emits the same rows in a different
    sequence, so equivalence is over the result multiset: each row is
    serialized from its sorted field items, the serializations are
    sorted, and the concatenation is hashed.
    """
    serialized = sorted(
        repr(sorted(record.as_dict().items())) for record in records
    )
    digest = hashlib.sha256()
    for row in serialized:
        digest.update(row.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class QueryOutcome:
    """What one query did under the profile, versus its baseline."""

    def __init__(self, number, name, expected, baseline_rows, baseline_digest):
        self.number = number
        self.name = name
        #: ``"complete"`` or ``"fail-fast"``.
        self.expected = expected
        self.baseline_rows = baseline_rows
        self.baseline_digest = baseline_digest
        self.outcome = None
        self.rows = None
        self.digest = None
        self.rows_match = None
        self.failure = None
        self.attempts = None
        self.injector = None
        self.resilience = None

    @property
    def passed(self):
        """Whether the query met the profile's expectation."""
        if self.expected == "complete":
            return self.outcome == "completed" and bool(self.rows_match)
        return (
            self.outcome == "failed"
            and self.failure is not None
            and self.failure["type"] == "PermanentIOError"
            and self.attempts == 1
        )

    def to_dict(self):
        """Plain-data form, deterministic for a given profile and seed."""
        return {
            "number": self.number,
            "query": self.name,
            "expected": self.expected,
            "outcome": self.outcome,
            "baseline_rows": self.baseline_rows,
            "baseline_digest": self.baseline_digest,
            "rows": self.rows,
            "digest": self.digest,
            "rows_match": self.rows_match,
            "failure": self.failure,
            "attempts": self.attempts,
            "injector": self.injector,
            "resilience": self.resilience,
            "passed": self.passed,
        }


class ChaosReport:
    """The harness's verdict over a whole workload."""

    def __init__(self, profile, seed, execution_mode, outcomes,
                 reopt=None, skew=None):
        self.profile = profile
        self.seed = seed
        self.execution_mode = execution_mode
        self.outcomes = list(outcomes)
        #: Mid-query re-optimization policy dict, or None when off.
        self.reopt = reopt
        #: ``(declared, actual)`` selectivity skew, or None.
        self.skew = skew

    @property
    def passed(self):
        """Whether every query met the profile's expectation."""
        return all(outcome.passed for outcome in self.outcomes)

    def to_dict(self):
        """Plain-data form (no wall-clock values anywhere)."""
        return {
            "profile": self.profile.to_dict(),
            "seed": self.seed,
            "execution_mode": self.execution_mode,
            "reopt": self.reopt,
            "skew": list(self.skew) if self.skew is not None else None,
            "queries": [outcome.to_dict() for outcome in self.outcomes],
            "passed": self.passed,
        }

    def to_json(self):
        """Canonical JSON: sorted keys, so equal reports are equal bytes."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self):
        """Human-readable summary table."""
        lines = [
            "chaos profile %r (seed %d, %s mode): %s"
            % (
                self.profile.name,
                self.seed,
                self.execution_mode,
                "PASS" if self.passed else "FAIL",
            )
        ]
        for outcome in self.outcomes:
            if outcome.outcome == "completed":
                detail = "%d rows, match=%s" % (
                    outcome.rows,
                    outcome.rows_match,
                )
            else:
                detail = "failed: %s after %r attempt(s)" % (
                    outcome.failure["type"],
                    outcome.attempts,
                )
            counts = outcome.resilience or {}
            lines.append(
                "  %-12s %-9s [%s]  %s  "
                "(retries=%d degradations=%d fallbacks=%d timeouts=%d)"
                % (
                    outcome.name,
                    "pass" if outcome.passed else "FAIL",
                    outcome.expected,
                    detail,
                    counts.get("transient_retries", 0),
                    counts.get("degradations", 0),
                    counts.get("fallback_activations", 0),
                    counts.get("timeouts", 0),
                )
            )
        return "\n".join(lines)

    def __repr__(self):
        return "ChaosReport(%r, %d queries, passed=%s)" % (
            self.profile.name,
            len(self.outcomes),
            self.passed,
        )


def _fresh_service(workload, data_seed, resilience):
    """A single-use service over a freshly populated database."""
    from repro.service.service import QueryService

    database = Database(workload.catalog)
    populate_database(database, seed=data_seed)
    service = QueryService(
        database,
        max_workers=1,
        execute=True,
        resilience=resilience,
    )
    return database, service


def run_chaos(profile_name, query_numbers=DEFAULT_QUERIES, seed=0,
              execution_mode="row", data_seed=11, max_retries=3,
              max_degradations=2, reopt=None, skew=None):
    """Replay the paper queries under a named profile; a ChaosReport.

    Each query gets its own baseline and faulty databases (identically
    seeded) and its own injector, so faults in one query cannot leak
    operations into another.  Backoff delays are zeroed and sleeps are
    no-ops: the harness tests *outcomes*, not schedules.

    ``reopt`` (a :class:`~repro.executor.midquery.ReoptPolicy` or spec
    string) routes the *faulty* service's executions through mid-query
    re-optimization, so injected faults land during checkpoint drains
    and re-decision passes; the baseline stays plain, which keeps
    ``rows_match`` meaningful — re-optimization must never change the
    result multiset.  ``skew`` is an optional ``(declared, actual)``
    selectivity pair replacing the random bindings with lying ones
    (see :func:`~repro.workloads.bindings.skewed_bindings`), forcing
    observed cardinalities away from their estimates so re-decisions
    actually switch plans under fault pressure.
    """
    from repro.executor.midquery import ReoptPolicy

    profile = fault_profile(profile_name)
    if reopt is not None and not isinstance(reopt, ReoptPolicy):
        reopt = ReoptPolicy.parse(reopt)
    expects_failure = any(rule.kind == "permanent" for rule in profile.rules)
    expected = "fail-fast" if expects_failure else "complete"
    outcomes = []
    for number in query_numbers:
        workload = paper_workload(number, memory_uncertain=True)
        if skew is not None:
            declared, actual = skew
            bindings = skewed_bindings(
                workload, declared=declared, actual=actual, seed=seed
            )
        else:
            bindings = random_bindings(workload, seed=seed, run_index=0)

        baseline_db, baseline_service = _fresh_service(
            workload, data_seed, ResiliencePolicy()
        )
        try:
            baseline = baseline_service.run(
                workload.query, bindings, execution_mode=execution_mode
            )
        finally:
            baseline_service.shutdown()
        outcome = QueryOutcome(
            number,
            workload.name,
            expected,
            baseline.execution.row_count,
            rows_digest(baseline.execution.records),
        )

        resilience = ResiliencePolicy(
            retry=RetryPolicy(
                max_retries=max_retries, base_delay=0.0, jitter=0.0, seed=seed
            ),
            max_degradations=max_degradations,
            sleep=lambda _seconds: None,
        )
        faulty_db, faulty_service = _fresh_service(
            workload, data_seed, resilience
        )
        injector = faulty_db.install_fault_injector(
            FaultInjector(profile, seed=seed)
        )
        try:
            try:
                result = faulty_service.run(
                    workload.query,
                    bindings.copy(),
                    execution_mode=execution_mode,
                    reopt_policy=reopt,
                )
            except ServiceExecutionError as error:
                outcome.outcome = "failed"
                outcome.failure = {
                    "type": type(error.cause).__name__,
                    "message": str(error.cause),
                }
                outcome.attempts = error.attempts
            else:
                outcome.outcome = "completed"
                outcome.rows = result.execution.row_count
                outcome.digest = rows_digest(result.execution.records)
                outcome.rows_match = outcome.digest == outcome.baseline_digest
            outcome.injector = injector.snapshot()
            outcome.resilience = faulty_service.resilience_counts()
        finally:
            faulty_service.shutdown()
        outcomes.append(outcome)
    return ChaosReport(
        profile,
        seed,
        execution_mode,
        outcomes,
        reopt=reopt.to_dict() if reopt is not None and reopt.active else None,
        skew=tuple(skew) if skew is not None else None,
    )


# ----------------------------------------------------------------------
# Service-tier chaos: shard kill / hang / slow scenarios
# ----------------------------------------------------------------------

#: Deterministic shard-fault scenarios the service harness can inject.
SERVICE_SCENARIOS = ("kill-shard", "hang-shard", "slow-shard")


def rows_sequence_digest(records):
    """Order-*sensitive* SHA-256 digest of a result's rows.

    The service-tier contract is stronger than the storage-fault one:
    a failed-over request re-runs the same optimizer over the same
    catalog, so it must produce byte-identical rows in byte-identical
    order — not merely the same multiset.
    """
    digest = hashlib.sha256()
    for record in records:
        digest.update(repr(sorted(record.as_dict().items())).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class ServiceChaosReport:
    """Verdict of one shard-fault scenario versus its unfaulted run."""

    def __init__(self, scenario, seed, shards, inject_at, heal_at,
                 execution_mode, target_shard, outcomes, conservation,
                 supervision, transitions):
        self.scenario = scenario
        self.seed = seed
        self.shards = shards
        self.inject_at = inject_at
        self.heal_at = heal_at
        self.execution_mode = execution_mode
        self.target_shard = target_shard
        #: Per-request rows: ``{index, tag, outcome, digest, match}``.
        self.outcomes = list(outcomes)
        self.conservation = dict(conservation)
        self.supervision = dict(supervision)
        self.transitions = [list(item) for item in transitions]

    @property
    def expected_restarts(self):
        """Restarts the scenario must cause: 1 for kill/hang, 0 for slow."""
        return 0 if self.scenario == "slow-shard" else 1

    @property
    def conserved(self):
        """submitted == completed + failed_over + failed + rejected."""
        c = self.conservation
        return c["submitted"] == (
            c["completed"] + c["failed_over"] + c["failed"] + c["rejected"]
        )

    @property
    def passed(self):
        """Byte-identical rows, exact conservation, expected recovery."""
        return (
            all(row["match"] for row in self.outcomes)
            and self.conserved
            and self.conservation["failed"] == 0
            and self.supervision["restarts"] == self.expected_restarts
        )

    def to_dict(self):
        """Plain-data form (no wall-clock values anywhere)."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "shards": self.shards,
            "inject_at": self.inject_at,
            "heal_at": self.heal_at,
            "execution_mode": self.execution_mode,
            "target_shard": self.target_shard,
            "requests": [dict(row) for row in self.outcomes],
            "conservation": dict(self.conservation),
            "conserved": self.conserved,
            "supervision": dict(self.supervision),
            "transitions": [list(item) for item in self.transitions],
            "expected_restarts": self.expected_restarts,
            "passed": self.passed,
        }

    def to_json(self):
        """Canonical JSON: sorted keys, so equal reports are equal bytes."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self):
        """Human-readable summary."""
        c = self.conservation
        lines = [
            "service chaos %r (seed %d, %d shards, %s mode): %s"
            % (
                self.scenario,
                self.seed,
                self.shards,
                self.execution_mode,
                "PASS" if self.passed else "FAIL",
            ),
            "  target shard %d, fault at request %d, supervision at %d"
            % (self.target_shard, self.inject_at, self.heal_at),
            "  conservation: submitted=%d completed=%d failed_over=%d "
            "failed=%d rejected=%d (%s)"
            % (
                c["submitted"],
                c["completed"],
                c["failed_over"],
                c["failed"],
                c["rejected"],
                "exact" if self.conserved else "VIOLATED",
            ),
            "  supervision: %d suspects, %d downs, %d restarts "
            "(expected restarts: %d)"
            % (
                self.supervision["suspects"],
                self.supervision["downs"],
                self.supervision["restarts"],
                self.expected_restarts,
            ),
            "  rows: %d/%d byte-identical to unfaulted run"
            % (
                sum(1 for row in self.outcomes if row["match"]),
                len(self.outcomes),
            ),
        ]
        return "\n".join(lines)

    def __repr__(self):
        return "ServiceChaosReport(%r, %d requests, passed=%s)" % (
            self.scenario,
            len(self.outcomes),
            self.passed,
        )


def _service_chaos_gateway(catalog, shards, execution_mode, seed, data_seed):
    from repro.catalog import populate_database
    from repro.service.sharding import ShardedQueryService

    database = Database(catalog)
    populate_database(database, seed=data_seed)
    return ShardedQueryService(
        database,
        shards=shards,
        capacity=32,
        execution_mode=execution_mode,
        resilience_factory=lambda: ResiliencePolicy(
            retry=RetryPolicy(base_delay=0.0, jitter=0.0, seed=seed),
            sleep=lambda _seconds: None,
        ),
    )


def run_service_chaos(scenario, seed=0, shards=3, requests=36, shapes=6,
                      inject_at=10, heal_at=None, execution_mode="row",
                      data_seed=11):
    """Replay seeded traffic with a shard fault injected mid-stream.

    The same Zipf-skewed request stream is served twice, from
    identically seeded databases: once unfaulted (the baseline), once
    with ``scenario`` injected at request index ``inject_at`` against
    the shard owning that request's signature:

    * ``kill-shard`` — the worker dies abruptly (queued work
      cancelled).  Requests routed to the dead shard fail over to a
      sibling until the supervisor's sweep at ``heal_at`` detects the
      dead worker and rebuilds the shard.
    * ``hang-shard`` — the worker wedges mid-queue.  The hung request
      completes via failover when the supervisor's progress checks
      escalate the shard suspect → down and restart it.
    * ``slow-shard`` — the shard reports stalled serves; supervision
      marks it suspect and recovers it to healthy without a restart.

    The report asserts the tier's two hard promises: every request's
    rows are **byte-identical** to the unfaulted run's, and the
    request accounting conserves exactly (``submitted == completed +
    failed_over + failed + rejected``).  Everything is seeded and
    transitions happen at fixed request indexes, so two runs with the
    same arguments produce byte-identical reports.
    """
    from repro.workloads.traffic import HeavyTrafficSpec, to_service_requests

    if scenario not in SERVICE_SCENARIOS:
        raise ValueError(
            "unknown service chaos scenario %r (choose from %r)"
            % (scenario, SERVICE_SCENARIOS)
        )
    if heal_at is None:
        heal_at = inject_at + 6
    if not 0 <= inject_at < requests or not inject_at < heal_at < requests:
        raise ValueError(
            "need 0 <= inject_at (%d) < heal_at (%d) < requests (%d)"
            % (inject_at, heal_at, requests)
        )
    spec = HeavyTrafficSpec(
        requests=requests,
        query_shapes=shapes,
        tenants=2,
        relations=2,
        seed=seed,
    )
    catalog, _queries, service_requests = to_service_requests(spec)

    baseline = _service_chaos_gateway(
        catalog, shards, execution_mode, seed, data_seed
    )
    try:
        baseline_digests = [
            rows_sequence_digest(
                baseline.run(
                    request.query, request.bindings, tag=request.tag
                ).execution.records
            )
            for request in service_requests
        ]
    finally:
        baseline.shutdown()

    gateway = _service_chaos_gateway(
        catalog, shards, execution_mode, seed, data_seed
    )
    target = gateway.shard_for(service_requests[inject_at].query)
    outcomes = [None] * requests
    hung = None  # (index, future)
    try:
        for index, request in enumerate(service_requests):
            if index == heal_at:
                gateway.supervisor.check()
                gateway.supervisor.check()
                if hung is not None:
                    # The restart above resolved the wedged worker's
                    # future through the gateway's failover callback.
                    # Wait for it *here*, before the replay continues:
                    # the callback runs on the old worker thread, and
                    # letting it race the main-thread serves would
                    # make the per-request outcome attribution below
                    # nondeterministic.
                    hung_index, future = hung
                    result = future.result(timeout=60.0)
                    digest = rows_sequence_digest(result.execution.records)
                    outcomes[hung_index] = {
                        "index": hung_index,
                        "tag": service_requests[hung_index].tag,
                        "outcome": "failed_over",
                        "digest": digest,
                        "match": digest == baseline_digests[hung_index],
                    }
                    hung = None
            if index == inject_at:
                if scenario == "kill-shard":
                    target.kill()
                elif scenario == "hang-shard":
                    target.inject_fault("hang")
                    future = gateway.submit(
                        request.query,
                        request.bindings,
                        tag=request.tag,
                        tenant=request.tenant,
                    )
                    # Deterministic synchronization: the fault has
                    # fired (the worker is wedged) before the replay
                    # continues, so every later supervision check sees
                    # the same picture.
                    target._hanging.wait(timeout=30.0)
                    hung = (index, future)
                    continue
                else:
                    target.inject_fault("slow", count=3)
            before = gateway.request_outcomes()["failed_over"]
            result = gateway.run(
                request.query,
                request.bindings,
                tag=request.tag,
                tenant=request.tenant,
            )
            failed_over = (
                gateway.request_outcomes()["failed_over"] > before
            )
            digest = rows_sequence_digest(result.execution.records)
            outcomes[index] = {
                "index": index,
                "tag": request.tag,
                "outcome": "failed_over" if failed_over else "completed",
                "digest": digest,
                "match": digest == baseline_digests[index],
            }
        if hung is not None:
            index, future = hung
            result = future.result(timeout=60.0)
            digest = rows_sequence_digest(result.execution.records)
            outcomes[index] = {
                "index": index,
                "tag": service_requests[index].tag,
                "outcome": "failed_over",
                "digest": digest,
                "match": digest == baseline_digests[index],
            }
        conservation = gateway.request_outcomes()
        conservation.pop("failover_reasons", None)
        supervision = gateway.supervisor.counts()
        transitions = list(gateway.supervisor.transitions)
    finally:
        gateway.shutdown()
    return ServiceChaosReport(
        scenario,
        seed,
        shards,
        inject_at,
        heal_at,
        execution_mode,
        target.index,
        outcomes,
        conservation,
        supervision,
        transitions,
    )
