"""Deterministic fault injection for the storage layer.

The paper's premise is that run-time conditions diverge from
compile-time assumptions; this module makes the divergence *active*:
storage operations can raise simulated I/O errors and the run-time
memory grant can shrink mid-query, all reproducibly.

A :class:`FaultProfile` declares *what* goes wrong — rules mapping
operation sites to transient or permanent faults, plus memory-drop
stages — and a :class:`FaultInjector` decides *when*, driven by a
global operation counter and a stream seeded through
:mod:`repro.common.rng`.  Two injectors built from the same profile
and seed observe identical operation sequences and therefore inject
identical faults, which is what the chaos determinism gate in CI
asserts byte-for-byte.

Injection sites (the ``site`` strings rules match on):

* ``heap_read``     — one heap page read (scan page or RID fetch);
* ``heap_write``    — one heap page write (load-time allocation);
* ``index_probe``   — one B-tree descent (search or range-scan open);
* ``buffer_access`` — one buffer-pool frame access.

Storage structures call :meth:`FaultInjector.record` *before* charging
the corresponding I/O, so a faulted operation charges nothing — the
retry re-pays the full cost, exactly like a real re-issued request.
"""

from repro.common.errors import (
    ExecutionError,
    MemoryDropError,
    PermanentIOError,
    TransientIOError,
)
from repro.common.rng import make_rng

#: Operation sites rules may target.
FAULT_SITES = ("heap_read", "heap_write", "index_probe", "buffer_access")

#: Fault kinds a rule may inject.
FAULT_KINDS = ("transient", "permanent")


class FaultRule:
    """One injection rule: a site, a trigger, and a fault kind.

    Triggers compose two ways:

    * ``at_operations`` — inject exactly when the injector's
      *per-site* operation counter hits one of these values
      (deterministic and seed-independent).  Counting per site makes
      thresholds portable across plans: the 3rd heap read exists in
      every plan that reads a heap at all, whereas a global operation
      number may land on a different site per plan.  The counter keeps
      climbing across retries, so a threshold is always eventually
      reached — and with ``limit`` set, fires exactly ``limit`` times
      — for any query touching the site, which is what lets the chaos
      gate assert retry counts exactly by construction;
    * ``rate`` — inject with this probability per matching operation,
      drawn from the injector's seeded stream (deterministic per
      seed).

    ``limit`` caps the rule's total injections, which guarantees that
    retry loops over transient faults converge.
    """

    def __init__(self, site, kind="transient", rate=0.0, at_operations=(),
                 limit=None):
        if site not in FAULT_SITES:
            raise ExecutionError(
                "fault site must be one of %r, got %r" % (FAULT_SITES, site)
            )
        if kind not in FAULT_KINDS:
            raise ExecutionError(
                "fault kind must be one of %r, got %r" % (FAULT_KINDS, kind)
            )
        if not 0.0 <= float(rate) <= 1.0:
            raise ExecutionError("fault rate must be a probability")
        self.site = site
        self.kind = kind
        self.rate = float(rate)
        self.at_operations = frozenset(int(op) for op in at_operations)
        self.limit = None if limit is None else int(limit)

    def to_dict(self):
        """Plain-data form (used by the chaos report)."""
        return {
            "site": self.site,
            "kind": self.kind,
            "rate": self.rate,
            "at_operations": sorted(self.at_operations),
            "limit": self.limit,
        }

    def __repr__(self):
        return "FaultRule(%s, %s, rate=%g, at=%d ops, limit=%r)" % (
            self.site,
            self.kind,
            self.rate,
            len(self.at_operations),
            self.limit,
        )


class MemoryDropStage:
    """One mid-query shrink of the run-time memory grant.

    When the injector's operation counter reaches ``after_operations``
    the stage fires once, raising
    :class:`~repro.common.errors.MemoryDropError` with ``to_pages`` as
    the new grant.  From then on the injector reports the shrunk grant
    to every execution context, so the restarted query runs — and
    re-decides its choose-plan operators — under the new memory.
    """

    def __init__(self, after_operations, to_pages):
        if int(to_pages) < 1:
            raise ExecutionError("memory cannot drop below one page")
        self.after_operations = int(after_operations)
        self.to_pages = int(to_pages)

    def to_dict(self):
        """Plain-data form (used by the chaos report)."""
        return {
            "after_operations": self.after_operations,
            "to_pages": self.to_pages,
        }

    def __repr__(self):
        return "MemoryDropStage(after=%d, to=%d pages)" % (
            self.after_operations,
            self.to_pages,
        )


class FaultProfile:
    """A named, declarative description of what goes wrong."""

    def __init__(self, name, rules=(), memory_drops=(), description=""):
        self.name = name
        self.rules = tuple(rules)
        self.memory_drops = tuple(
            sorted(memory_drops, key=lambda stage: stage.after_operations)
        )
        self.description = description

    def to_dict(self):
        """Plain-data form (used by the chaos report)."""
        return {
            "name": self.name,
            "description": self.description,
            "rules": [rule.to_dict() for rule in self.rules],
            "memory_drops": [stage.to_dict() for stage in self.memory_drops],
        }

    def __repr__(self):
        return "FaultProfile(%r, %d rules, %d memory drops)" % (
            self.name,
            len(self.rules),
            len(self.memory_drops),
        )


class FaultInjector:
    """Seeded run-time state deciding when a profile's faults fire.

    One injector serves one database for the duration of the faulted
    activity (install it with
    :meth:`~repro.storage.database.Database.install_fault_injector`).
    The counters — operations observed, faults injected by kind,
    memory drops fired — are the ground truth the service's resilience
    counters are asserted against.
    """

    def __init__(self, profile, seed=0):
        self.profile = profile
        self.seed = int(seed)
        self._rng = make_rng(self.seed, "fault-injector", profile.name)
        self.operations = 0
        self.site_operations = dict.fromkeys(FAULT_SITES, 0)
        self.injected_transient = 0
        self.injected_permanent = 0
        self.memory_drops_fired = 0
        self._rule_injections = [0] * len(profile.rules)
        self._stage_fired = [False] * len(profile.memory_drops)

    # ------------------------------------------------------------------
    # The storage-layer hook
    # ------------------------------------------------------------------

    def record(self, site, count=1):
        """Observe ``count`` operations at ``site``, possibly faulting.

        Called by the storage layer before charging the corresponding
        I/O.  Raises at most one fault per call; the operation counter
        still advances for every observed operation, so batch-mode
        bulk charges keep the same operation numbering as row mode.
        """
        profile = self.profile
        for _ in range(count):
            self.operations += 1
            site_count = self.site_operations.get(site, 0) + 1
            self.site_operations[site] = site_count
            for index, stage in enumerate(profile.memory_drops):
                if self._stage_fired[index]:
                    continue
                if self.operations >= stage.after_operations:
                    self._stage_fired[index] = True
                    self.memory_drops_fired += 1
                    raise MemoryDropError(
                        "injected memory drop to %d pages at operation %d"
                        % (stage.to_pages, self.operations),
                        stage.to_pages,
                        site=site,
                        operation_index=self.operations,
                    )
            for index, rule in enumerate(profile.rules):
                if rule.site != site:
                    continue
                if rule.limit is not None and (
                    self._rule_injections[index] >= rule.limit
                ):
                    continue
                triggered = site_count in rule.at_operations
                if not triggered and rule.rate > 0.0:
                    triggered = self._rng.random() < rule.rate
                if not triggered:
                    continue
                self._rule_injections[index] += 1
                message = "injected %s fault at %s operation %d" % (
                    rule.kind,
                    site,
                    self.operations,
                )
                if rule.kind == "transient":
                    self.injected_transient += 1
                    raise TransientIOError(
                        message, site=site, operation_index=self.operations
                    )
                self.injected_permanent += 1
                raise PermanentIOError(
                    message, site=site, operation_index=self.operations
                )

    # ------------------------------------------------------------------
    # Memory pressure
    # ------------------------------------------------------------------

    def current_memory_pages(self, original_pages):
        """The grant after every fired drop stage (never below 1)."""
        pages = int(original_pages)
        for index, stage in enumerate(self.profile.memory_drops):
            if self._stage_fired[index]:
                pages = min(pages, stage.to_pages)
        return max(1, pages)

    def snapshot(self):
        """The injector's counters as a plain dict."""
        return {
            "profile": self.profile.name,
            "seed": self.seed,
            "operations": self.operations,
            "site_operations": dict(self.site_operations),
            "injected_transient": self.injected_transient,
            "injected_permanent": self.injected_permanent,
            "memory_drops_fired": self.memory_drops_fired,
        }

    def __repr__(self):
        return (
            "FaultInjector(%r, ops=%d, transient=%d, permanent=%d, drops=%d)"
            % (
                self.profile.name,
                self.operations,
                self.injected_transient,
                self.injected_permanent,
                self.memory_drops_fired,
            )
        )


def _builtin_profiles():
    """The named profiles the chaos CLI and CI smoke job replay.

    The recoverable profiles use ``at_operations`` triggers with a
    ``limit``, so the number of injected faults — and therefore the
    service's retry/degradation counters — is exact by construction
    for every paper query: per-site counters keep climbing across
    retries, so each threshold fires exactly once no matter how few
    operations one plan performs (the index-driven paper queries read
    as few as three heap pages per attempt).  Memory-drop thresholds
    sit below the smallest query's per-attempt operation count for the
    same reason.  ``flaky-storage`` adds a seeded rate on top to
    exercise the probabilistic path; its counts vary by seed but are
    identical across runs of the same seed.
    """
    profiles = [
        FaultProfile("none", description="no faults (baseline)"),
        FaultProfile(
            "transient-io",
            rules=(
                FaultRule(
                    "heap_read",
                    kind="transient",
                    at_operations=(2, 5),
                    limit=2,
                ),
            ),
            description="two transient heap-read faults, then clean",
        ),
        FaultProfile(
            "memory-drop",
            rules=(),
            memory_drops=(MemoryDropStage(3, 2),),
            description="one mid-query memory drop to 2 pages",
        ),
        FaultProfile(
            "transient-and-drop",
            rules=(
                FaultRule(
                    "heap_read",
                    kind="transient",
                    at_operations=(2, 5),
                    limit=2,
                ),
            ),
            memory_drops=(MemoryDropStage(7, 2),),
            description=(
                "two transient heap-read faults plus one memory drop: "
                "the differential robustness gate's recoverable profile"
            ),
        ),
        FaultProfile(
            "flaky-storage",
            rules=(
                FaultRule("heap_read", kind="transient", rate=0.001, limit=3),
                FaultRule("index_probe", kind="transient", rate=0.002,
                          limit=2),
            ),
            memory_drops=(MemoryDropStage(500, 4),),
            description="seeded random transient faults and a memory drop",
        ),
        FaultProfile(
            "broken-disk",
            rules=(
                FaultRule("heap_read", kind="permanent", at_operations=(3,),
                          limit=1),
            ),
            description="a permanent heap-read fault: fail fast, no retry",
        ),
    ]
    return {profile.name: profile for profile in profiles}


#: Named profiles, ``python -m repro chaos --profile <name>``.
FAULT_PROFILES = _builtin_profiles()


def fault_profile(name):
    """Look up a named profile; raises with the valid names."""
    try:
        return FAULT_PROFILES[name]
    except KeyError:
        raise ExecutionError(
            "unknown fault profile %r (valid: %s)"
            % (name, ", ".join(sorted(FAULT_PROFILES)))
        ) from None
