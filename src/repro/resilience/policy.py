"""Service-level resilience: retry, circuit breaking, degradation.

The :class:`ResiliencePolicy` is the single knob the
:class:`~repro.service.service.QueryService` takes; it bundles

* a :class:`RetryPolicy` — exponential backoff with seeded jitter for
  transient storage faults;
* an optional :class:`CircuitBreaker` — per-query-signature guard on
  staleness-driven re-optimization, so a query whose bindings thrash
  in and out of the covered bounds stops paying a re-optimization per
  invocation and is served the (still correct, possibly suboptimal)
  cached plan for a cooldown instead;
* the degradation budget — how many mid-run memory-drop restarts a
  query may take before the service falls back to the conservative
  static plan.

Jitter draws come from a stream seeded through
:mod:`repro.common.rng`, so backoff schedules are reproducible; they
only affect *when* a retry runs, never what it computes.
"""

import threading
import time

from repro.common.errors import ExecutionError
from repro.common.rng import make_rng


def backoff_hint(seed, key, attempt, base_delay=0.001, multiplier=2.0,
                 jitter=0.1, cap=0.25):
    """A deterministic backoff delay: pure function of its arguments.

    The jitter fraction is drawn from a stream derived from ``(seed,
    key, attempt)``, so the same fault history always produces the
    same schedule — no shared RNG state, no thread-order dependence.
    ``cap`` bounds the exponential growth.  This is both the
    :class:`RetryPolicy` jitter primitive and the source of the
    ``retry_after_hint`` the gateway attaches to
    :class:`~repro.common.errors.ServiceOverloadError`.
    """
    base = min(float(cap), base_delay * (multiplier ** max(0, attempt - 1)))
    if jitter == 0.0 or base == 0.0:
        return base
    fraction = make_rng(seed, "retry-backoff", str(key), attempt).random()
    return base * (1.0 + jitter * fraction)


class RetryPolicy:
    """Exponential backoff with seeded, stateless jitter.

    The jitter draw for retry ``attempt`` of operation ``key`` is a
    pure function of ``(seed, key, attempt)`` — not of how many other
    threads drew before it — so backoff schedules are reproducible
    even under concurrent retries.
    """

    def __init__(self, max_retries=3, base_delay=0.001, multiplier=2.0,
                 jitter=0.1, seed=0):
        if max_retries < 0:
            raise ExecutionError("max_retries must be non-negative")
        if base_delay < 0.0:
            raise ExecutionError("base_delay must be non-negative")
        if multiplier < 1.0:
            raise ExecutionError("multiplier must be at least 1")
        if not 0.0 <= jitter <= 1.0:
            raise ExecutionError("jitter must be a fraction in [0, 1]")
        self.max_retries = int(max_retries)
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.jitter = float(jitter)
        self.seed = seed

    def delay(self, attempt, key=""):
        """Backoff before retry number ``attempt`` (1-based), in seconds.

        ``key`` scopes the jitter stream (e.g. the query signature
        digest) so distinct operations retrying concurrently get
        decorrelated — but individually reproducible — schedules.
        """
        base = self.base_delay * (self.multiplier ** (attempt - 1))
        if self.jitter == 0.0:
            return base
        fraction = make_rng(self.seed, "retry-backoff", str(key), attempt).random()
        return base * (1.0 + self.jitter * fraction)

    def __repr__(self):
        return "RetryPolicy(max_retries=%d, base=%gs, x%g, jitter=%g)" % (
            self.max_retries,
            self.base_delay,
            self.multiplier,
            self.jitter,
        )


class CircuitBreaker:
    """Per-key breaker over staleness-driven re-optimization.

    ``failure_threshold`` consecutive re-optimizations of the same
    query signature trip the breaker; while open, the next
    ``cooldown`` stale lookups for that signature are *short-
    circuited* — served from the cached plan without re-optimizing —
    after which the breaker closes again (count-based rather than
    time-based, so behaviour is deterministic under replay).  A
    non-stale invocation resets the consecutive count.
    """

    def __init__(self, failure_threshold=3, cooldown=8):
        if failure_threshold < 1:
            raise ExecutionError("failure_threshold must be at least 1")
        if cooldown < 1:
            raise ExecutionError("cooldown must be at least 1")
        self.failure_threshold = int(failure_threshold)
        self.cooldown = int(cooldown)
        self.trips = 0
        self.short_circuits = 0
        self._lock = threading.Lock()
        #: key -> [consecutive_reoptimizations, open_remaining]
        self._states = {}

    def _state(self, key):
        state = self._states.get(key)
        if state is None:
            state = [0, 0]
            self._states[key] = state
        return state

    def allow(self, key):
        """Whether a stale invocation of ``key`` may re-optimize now."""
        with self._lock:
            state = self._state(key)
            if state[1] > 0:
                state[1] -= 1
                self.short_circuits += 1
                return False
            return True

    def record_reoptimization(self, key):
        """Count one re-optimization; returns True when this trips."""
        with self._lock:
            state = self._state(key)
            state[0] += 1
            if state[0] >= self.failure_threshold:
                state[0] = 0
                state[1] = self.cooldown
                self.trips += 1
                return True
            return False

    def record_success(self, key):
        """A non-stale invocation: reset the consecutive count."""
        with self._lock:
            state = self._states.get(key)
            if state is not None:
                state[0] = 0

    def state(self, key):
        """``"open"`` or ``"closed"`` for a key (for introspection)."""
        with self._lock:
            state = self._states.get(key)
            if state is not None and state[1] > 0:
                return "open"
            return "closed"

    def __repr__(self):
        return "CircuitBreaker(threshold=%d, cooldown=%d, trips=%d)" % (
            self.failure_threshold,
            self.cooldown,
            self.trips,
        )


class ResiliencePolicy:
    """Everything the service needs to degrade instead of dying.

    ``breaker=None`` (the default) disables circuit breaking; pass a
    :class:`CircuitBreaker` to enable it.  ``deadline_seconds`` is the
    service-wide default applied to requests that do not carry their
    own.  ``sleep`` is injectable so tests can retry without waiting.
    """

    def __init__(self, retry=None, breaker=None, max_degradations=2,
                 deadline_seconds=None, sleep=time.sleep):
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker
        if max_degradations < 0:
            raise ExecutionError("max_degradations must be non-negative")
        self.max_degradations = int(max_degradations)
        self.deadline_seconds = deadline_seconds
        self.sleep = sleep

    def __repr__(self):
        return (
            "ResiliencePolicy(%r, breaker=%s, max_degradations=%d, "
            "deadline=%r)"
            % (
                self.retry,
                "on" if self.breaker is not None else "off",
                self.max_degradations,
                self.deadline_seconds,
            )
        )
