"""Fault injection, deadlines, and graceful degradation.

The robustness subsystem: a deterministic fault-injection harness for
the storage layer (:mod:`repro.resilience.faults`), cooperative query
deadlines (:mod:`repro.resilience.deadline`), the retry/circuit-
breaker/degradation policy the service runs under
(:mod:`repro.resilience.policy`), and the chaos harness that replays
workloads under named fault profiles and checks the results against
fault-free runs (:mod:`repro.resilience.chaos`).
"""

from repro.resilience.deadline import CountingClock, Deadline
from repro.resilience.faults import (
    FAULT_KINDS,
    FAULT_PROFILES,
    FAULT_SITES,
    FaultInjector,
    FaultProfile,
    FaultRule,
    MemoryDropStage,
    fault_profile,
)
from repro.resilience.policy import (
    CircuitBreaker,
    ResiliencePolicy,
    RetryPolicy,
    backoff_hint,
)

__all__ = [
    "CountingClock",
    "Deadline",
    "FAULT_KINDS",
    "FAULT_PROFILES",
    "FAULT_SITES",
    "FaultInjector",
    "FaultProfile",
    "FaultRule",
    "MemoryDropStage",
    "fault_profile",
    "CircuitBreaker",
    "ResiliencePolicy",
    "RetryPolicy",
    "backoff_hint",
]
