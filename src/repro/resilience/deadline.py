"""Query deadlines with cooperative cancellation.

A :class:`Deadline` is created when an execution (or service request)
starts and is checked at cooperative points: iterator open and every
row/batch boundary of the executor's drive loop.  Expiry raises
:class:`~repro.common.errors.QueryTimeoutError`; the engine enriches
the error with the partial accounting (rows, I/O delta, trace) before
letting it propagate, so a timed-out query is still observable.

The clock is injectable, which keeps timeout tests deterministic: a
counting clock expires a deadline after an exact number of checks
instead of after wall time.
"""

import time

from repro.common.errors import ExecutionError, QueryTimeoutError


class Deadline:
    """An absolute expiry point with a pluggable clock."""

    __slots__ = ("seconds", "_clock", "_started", "_expires")

    def __init__(self, seconds, clock=time.monotonic):
        seconds = float(seconds)
        if seconds < 0.0:
            raise ExecutionError("deadline seconds must be non-negative")
        self.seconds = seconds
        self._clock = clock
        self._started = clock()
        self._expires = self._started + seconds

    @classmethod
    def ensure(cls, value):
        """Coerce ``None`` / seconds / ``Deadline`` to an optional deadline."""
        if value is None or isinstance(value, cls):
            return value
        return cls(value)

    def elapsed(self):
        """Seconds since the deadline was armed."""
        return self._clock() - self._started

    def remaining(self):
        """Seconds until expiry (negative once expired)."""
        return self._expires - self._clock()

    def expired(self):
        """Whether the deadline has passed."""
        return self._clock() >= self._expires

    def check(self):
        """Raise :class:`QueryTimeoutError` once the deadline passed."""
        now = self._clock()
        if now >= self._expires:
            raise QueryTimeoutError(
                "query deadline of %gs expired after %gs"
                % (self.seconds, now - self._started),
                deadline_seconds=self.seconds,
                elapsed_seconds=now - self._started,
            )

    def __repr__(self):
        return "Deadline(%gs, remaining=%gs)" % (self.seconds, self.remaining())


class CountingClock:
    """A fake clock advancing one second per reading (for tests).

    A ``Deadline(n, clock=CountingClock())`` expires on the ``n``-th
    check, making cancellation points directly countable: tests assert
    *where* cancellation lands (within one batch, at an open) rather
    than racing wall time.
    """

    __slots__ = ("now",)

    def __init__(self, start=0.0):
        self.now = float(start)

    def __call__(self):
        current = self.now
        self.now += 1.0
        return current
