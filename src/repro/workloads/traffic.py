"""Heavy-traffic workload generation for the sharded serving tier.

The service workloads in :mod:`repro.workloads.service` model a small
embedded-SQL mix replayed a few hundred times; this module models the
regime the sharded gateway (:mod:`repro.service.sharding`) exists for
— the operating conditions industrial plan-cache surveys identify as
the ones that matter:

* **Zipf-skewed query popularity**: a catalog of ``query_shapes``
  distinct parameterized query signatures whose request frequencies
  follow a Zipf law (weight of rank *r* proportional to ``1/r^s``,
  paper-survey default ``s = 1.1``) — a few hot statements dominate
  while a long tail keeps the plan caches churning;
* **tenant mixes**: each request carries a tenant identity, itself
  Zipf-distributed, so per-tenant quotas and fairness are exercisable;
* **bursty open-loop arrivals**: exponential interarrival times whose
  rate is multiplied during periodic burst windows — the arrival
  process does not wait for responses, which is what makes admission
  control and typed overload rejection necessary in the first place.

Everything derives from the spec seed through
:mod:`repro.common.rng`, with one independent stream per aspect
(shape choice, tenant choice, arrivals, binding values): the full
request stream is a pure function of the spec, and
:func:`request_stream_json` renders it to canonical JSON so replays
can assert byte-identical regeneration (the chaos-smoke determinism
check does exactly that).

The generated stream is *data* — plain records — until
:func:`to_service_requests` materializes executable
:class:`~repro.service.service.ServiceRequest` objects over a shared
synthetic catalog.  Distinct signatures come from distinct expected
selectivities: the canonical query signature covers each predicate's
expected selectivity, so ``query_shapes`` shapes yield exactly that
many plan-cache entries.
"""

import json

from repro.catalog.synthetic import build_synthetic_catalog, default_relation_specs
from repro.common.errors import OptimizationError
from repro.common.rng import make_rng
from repro.cost.parameters import Bindings
from repro.optimizer.query import QuerySpec
from repro.service.service import ServiceRequest
from repro.workloads.queries import (
    SELECTION_ATTRIBUTE,
    make_join_predicates,
    make_selection_predicate,
)

__all__ = [
    "HeavyTrafficSpec",
    "TrafficRequest",
    "build_traffic_queries",
    "generate_traffic",
    "request_stream_json",
    "to_service_requests",
    "zipf_weights",
]


def zipf_weights(count, s):
    """Zipf popularity weights: rank ``r`` (0-based) gets ``1/(r+1)^s``.

    Unnormalized — :meth:`random.Random.choices` normalizes internally
    and keeping raw weights makes skew assertions in tests exact.
    """
    return [1.0 / (rank + 1) ** s for rank in range(count)]


class TrafficRequest:
    """One generated request: pure data, JSON-serializable.

    ``arrival_seconds`` is the open-loop arrival offset from stream
    start; ``selectivity`` is the invocation's uncertain-predicate
    binding value, materialized into executable
    :class:`~repro.cost.parameters.Bindings` by
    :func:`to_service_requests`.
    """

    __slots__ = ("index", "shape", "tenant", "arrival_seconds", "selectivity")

    def __init__(self, index, shape, tenant, arrival_seconds, selectivity):
        self.index = index
        self.shape = shape
        self.tenant = tenant
        self.arrival_seconds = arrival_seconds
        self.selectivity = selectivity

    def to_dict(self):
        """The record as a plain dict (canonical JSON building block)."""
        return {
            "index": self.index,
            "shape": self.shape,
            "tenant": self.tenant,
            "arrival_seconds": self.arrival_seconds,
            "selectivity": self.selectivity,
        }

    def __repr__(self):
        return "TrafficRequest(#%d, shape=%d, tenant=%r, t=%.6fs)" % (
            self.index,
            self.shape,
            self.tenant,
            self.arrival_seconds,
        )


class HeavyTrafficSpec:
    """Parameters of one heavy-traffic stream.

    Parameters
    ----------
    requests:
        Stream length.
    query_shapes:
        Number of distinct query signatures in the popularity ranking.
    zipf_s:
        Zipf skew of query popularity (``1.1`` matches the survey's
        hot-statement regime; larger is more skewed).
    tenants:
        Number of distinct tenants; request tenancy is Zipf-distributed
        with ``tenant_zipf_s``.
    arrival_rate:
        Mean open-loop arrival rate (requests/second) outside bursts.
    burst_factor:
        Arrival-rate multiplier inside a burst window.
    burst_length:
        Requests per burst window.
    burst_period:
        A burst window opens every ``burst_period`` windows (so
        ``1/burst_period`` of the stream arrives at burst rate).
    relations / topology:
        Shape of the underlying join query every signature shares;
        signatures differ in their expected selectivity.
    seed:
        Root seed; all four derived streams fan out from it.
    """

    FIELDS = (
        "requests",
        "query_shapes",
        "zipf_s",
        "tenants",
        "tenant_zipf_s",
        "arrival_rate",
        "burst_factor",
        "burst_length",
        "burst_period",
        "relations",
        "topology",
        "seed",
    )

    def __init__(
        self,
        requests=2000,
        query_shapes=40,
        zipf_s=1.1,
        tenants=4,
        tenant_zipf_s=1.0,
        arrival_rate=5000.0,
        burst_factor=4.0,
        burst_length=64,
        burst_period=4,
        relations=2,
        topology="chain",
        seed=0,
    ):
        self.requests = int(requests)
        self.query_shapes = int(query_shapes)
        self.zipf_s = float(zipf_s)
        self.tenants = int(tenants)
        self.tenant_zipf_s = float(tenant_zipf_s)
        self.arrival_rate = float(arrival_rate)
        self.burst_factor = float(burst_factor)
        self.burst_length = int(burst_length)
        self.burst_period = int(burst_period)
        self.relations = int(relations)
        self.topology = topology
        self.seed = int(seed)
        if self.requests < 0:
            raise OptimizationError("requests must be non-negative")
        if self.query_shapes < 1:
            raise OptimizationError("a traffic mix needs at least one shape")
        if self.tenants < 1:
            raise OptimizationError("a traffic mix needs at least one tenant")
        if self.arrival_rate <= 0.0:
            raise OptimizationError("arrival rate must be positive")
        if self.burst_factor < 1.0:
            raise OptimizationError("burst factor must be at least 1")
        if self.burst_length < 1 or self.burst_period < 1:
            raise OptimizationError("burst window sizes must be at least 1")
        if self.relations < 1:
            raise OptimizationError("queries need at least one relation")

    @classmethod
    def from_dict(cls, data):
        """Build a spec from a parsed JSON object."""
        unknown = set(data) - set(cls.FIELDS)
        if unknown:
            raise OptimizationError(
                "unknown traffic spec keys: %s" % ", ".join(sorted(unknown))
            )
        return cls(**data)

    def replace(self, **overrides):
        """A copy with some fields overridden."""
        fields = {name: getattr(self, name) for name in self.FIELDS}
        unknown = set(overrides) - set(fields)
        if unknown:
            raise OptimizationError(
                "unknown traffic spec fields: %s" % ", ".join(sorted(unknown))
            )
        fields.update(overrides)
        return HeavyTrafficSpec(**fields)

    def to_dict(self):
        """The spec as a plain dict (inverse of :meth:`from_dict`)."""
        return {name: getattr(self, name) for name in self.FIELDS}

    def __repr__(self):
        return (
            "HeavyTrafficSpec(%d requests, %d shapes zipf=%.2f, %d tenants)"
            % (self.requests, self.query_shapes, self.zipf_s, self.tenants)
        )


def _burst_multiplier(spec, index):
    """Arrival-rate multiplier for request ``index`` (deterministic)."""
    window = index // spec.burst_length
    if window % spec.burst_period == 0:
        return spec.burst_factor
    return 1.0


def generate_traffic(spec):
    """The spec's full request stream, generated up front.

    Four independent derived streams — shape popularity, tenancy,
    arrivals, binding values — so changing one aspect (say the tenant
    count) cannot reshuffle another's draws.  Returns a list of
    :class:`TrafficRequest` in arrival order.
    """
    shape_rng = make_rng(spec.seed, "traffic-shapes")
    tenant_rng = make_rng(spec.seed, "traffic-tenants")
    arrival_rng = make_rng(spec.seed, "traffic-arrivals")
    binding_rng = make_rng(spec.seed, "traffic-bindings")
    shape_weights = zipf_weights(spec.query_shapes, spec.zipf_s)
    tenant_weights = zipf_weights(spec.tenants, spec.tenant_zipf_s)
    shape_ranks = range(spec.query_shapes)
    tenant_ranks = range(spec.tenants)
    requests = []
    clock = 0.0
    for index in range(spec.requests):
        (shape,) = shape_rng.choices(shape_ranks, weights=shape_weights)
        (tenant_rank,) = tenant_rng.choices(tenant_ranks, weights=tenant_weights)
        rate = spec.arrival_rate * _burst_multiplier(spec, index)
        clock += arrival_rng.expovariate(rate)
        selectivity = binding_rng.random()
        requests.append(
            TrafficRequest(
                index,
                shape,
                "tenant-%d" % tenant_rank,
                clock,
                selectivity,
            )
        )
    return requests


def request_stream_json(requests):
    """The stream as canonical JSON (sorted keys, fixed separators).

    A pure function of the generating spec: equal seeds produce
    byte-identical output, which the deterministic-replay check in CI
    asserts with a literal byte comparison.
    """
    return json.dumps(
        [request.to_dict() for request in requests],
        sort_keys=True,
        separators=(",", ":"),
    )


def build_traffic_queries(spec):
    """One catalog plus ``query_shapes`` distinct query signatures.

    All shapes share the relation set and join topology; shape *i*
    differs in its uncertain predicate's *expected* selectivity, which
    the canonical signature covers — so the plan-cache working set has
    exactly ``query_shapes`` entries and the gateway spreads them
    across shards by signature hash.  Bounds stay at the full [0, 1]:
    heavy-traffic serving measures steady-state throughput, not
    staleness churn (drift workloads live in
    :mod:`repro.workloads.service`).
    """
    relation_specs = default_relation_specs(spec.relations, seed=spec.seed)
    catalog = build_synthetic_catalog(relation_specs, seed=spec.seed)
    relation_names = [relation.name for relation in relation_specs]
    joins = make_join_predicates(relation_names, spec.topology)
    queries = []
    for shape in range(spec.query_shapes):
        if spec.query_shapes == 1:
            expected = 0.05
        else:
            expected = 0.02 + 0.96 * shape / (spec.query_shapes - 1)
        selections = {
            name: make_selection_predicate(name, expected)
            for name in relation_names
        }
        queries.append(
            QuerySpec(
                relations=relation_names,
                selections=selections,
                join_predicates=joins,
                name="traffic-shape%03d" % shape,
            )
        )
    return catalog, queries


def _bindings_for(query, catalog, selectivity):
    """Executable bindings realizing one request's selectivity draw."""
    bindings = Bindings()
    for relation_name in query.relations:
        predicate = query.selection_for(relation_name)
        if predicate is None or not predicate.is_uncertain:
            continue
        domain = catalog.domain_size(relation_name, SELECTION_ATTRIBUTE)
        bindings.bind(predicate.selectivity_parameter, selectivity)
        variable = predicate.comparison.operand
        if hasattr(variable, "name"):
            bindings.bind_variable(variable.name, selectivity * domain)
    return bindings


def to_service_requests(spec, traffic=None, catalog=None, queries=None):
    """Materialize a stream into executable service requests.

    Returns ``(catalog, queries, service_requests)``; the request list
    aligns with the traffic stream index for index.  Each request
    carries its tenant (for gateway quotas) and a
    ``shape<i>#<index>`` tag.
    """
    if traffic is None:
        traffic = generate_traffic(spec)
    if catalog is None or queries is None:
        catalog, queries = build_traffic_queries(spec)
    service_requests = []
    for request in traffic:
        query = queries[request.shape]
        service_requests.append(
            ServiceRequest(
                query,
                _bindings_for(query, catalog, request.selectivity),
                tag="shape%d#%d" % (request.shape, request.index),
                tenant=request.tenant,
            )
        )
    return catalog, queries, service_requests
