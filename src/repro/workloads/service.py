"""Service workload specs: query mixes replayed through the service.

A *service workload* models the paper's embedded-SQL deployment: a
fixed set of parameterized queries (think precompiled application
statements) invoked over and over with fresh host-variable bindings.
A :class:`ServiceWorkloadSpec` describes the mix — query shapes,
weights, invocation count, thread width — and can be loaded from a
JSON file for the ``python -m repro serve-batch`` CLI.

All queries in one spec share a single catalog (a service fronts one
database), so a k-way query runs over the first k relations of the
largest query's catalog.  Every random stream — the mix order and each
invocation's bindings — derives from the spec seed through
:mod:`repro.common.rng`, and requests are fully generated before any
of them is submitted to a thread pool: replays are reproducible under
concurrency.

Spec JSON format::

    {
      "seed": 0,
      "invocations": 120,
      "threads": 8,
      "capacity": 64,
      "execute": true,
      "execution_mode": "row",
      "shards": 1,
      "tenants": 0,
      "queries": [
        {"relations": 2, "topology": "chain", "weight": 3},
        {"relations": 4, "topology": "star", "weight": 1,
         "selectivity_bounds": [0.0, 0.4], "drift": 0.1}
      ]
    }

``selectivity_bounds`` narrows the compile-time uncertainty of a
query's unbound predicates; ``drift`` is the probability that an
invocation draws its selectivities from the full [0, 1] instead —
bindings that may fall outside the narrowed bounds and so exercise the
plan cache's staleness re-optimization.
"""

import json

from repro.catalog.synthetic import build_synthetic_catalog, default_relation_specs
from repro.common.errors import OptimizationError
from repro.common.rng import make_rng
from repro.cost.parameters import Bindings, MEMORY_PARAMETER
from repro.optimizer.query import QuerySpec
from repro.workloads.queries import (
    SELECTION_ATTRIBUTE,
    Workload,
    make_join_predicates,
    make_selection_predicate,
)


class ServiceQuerySpec:
    """One parameterized query shape in a service mix."""

    def __init__(
        self,
        relations,
        topology="chain",
        weight=1,
        selectivity_bounds=(0.0, 1.0),
        memory_uncertain=False,
        drift=0.0,
    ):
        if relations < 1:
            raise OptimizationError("a service query needs at least one relation")
        if weight <= 0:
            raise OptimizationError("query weight must be positive")
        if not 0.0 <= drift <= 1.0:
            raise OptimizationError("drift must be a probability")
        self.relations = int(relations)
        self.topology = topology
        self.weight = float(weight)
        self.selectivity_bounds = (
            float(selectivity_bounds[0]),
            float(selectivity_bounds[1]),
        )
        self.memory_uncertain = bool(memory_uncertain)
        self.drift = float(drift)

    @classmethod
    def from_dict(cls, data):
        """Build from one ``queries`` element of a spec file."""
        known = {
            "relations",
            "topology",
            "weight",
            "selectivity_bounds",
            "memory_uncertain",
            "drift",
        }
        unknown = set(data) - known
        if unknown:
            raise OptimizationError(
                "unknown service query spec keys: %s" % ", ".join(sorted(unknown))
            )
        return cls(
            data["relations"],
            topology=data.get("topology", "chain"),
            weight=data.get("weight", 1),
            selectivity_bounds=tuple(data.get("selectivity_bounds", (0.0, 1.0))),
            memory_uncertain=data.get("memory_uncertain", False),
            drift=data.get("drift", 0.0),
        )

    def __repr__(self):
        return "ServiceQuerySpec(%d-way %s, weight=%g)" % (
            self.relations,
            self.topology,
            self.weight,
        )


class ServiceWorkloadSpec:
    """A full replayable service workload."""

    def __init__(
        self,
        queries,
        invocations=120,
        threads=8,
        capacity=64,
        seed=0,
        execute=True,
        execution_mode="row",
        shards=1,
        tenants=0,
    ):
        self.queries = list(queries)
        if not self.queries:
            raise OptimizationError("a service workload needs at least one query")
        self.invocations = int(invocations)
        self.threads = int(threads)
        self.capacity = int(capacity)
        self.seed = int(seed)
        self.execute = bool(execute)
        if execution_mode not in ("row", "batch", "compiled"):
            raise OptimizationError(
                "execution_mode must be 'row', 'batch', or 'compiled', "
                "got %r" % (execution_mode,)
            )
        self.execution_mode = execution_mode
        #: ``1`` replays through the single-lock service; larger counts
        #: go through the sharded gateway (:mod:`repro.service.sharding`)
        #: with this many plan-cache partitions.
        self.shards = int(shards)
        #: ``0`` leaves requests unattributed; larger counts assign each
        #: invocation a Zipf-distributed tenant identity from a derived
        #: stream (deterministic per seed).
        self.tenants = int(tenants)
        if self.invocations < 0:
            raise OptimizationError("invocations must be non-negative")
        if self.threads < 1:
            raise OptimizationError("a service needs at least one thread")
        if self.capacity < 1:
            raise OptimizationError("plan cache capacity must be at least 1")
        if self.shards < 1:
            raise OptimizationError("a service needs at least one shard")
        if self.tenants < 0:
            raise OptimizationError("tenant count must be non-negative")

    @classmethod
    def from_dict(cls, data):
        """Build a spec from a parsed JSON object."""
        return cls(
            [ServiceQuerySpec.from_dict(query) for query in data.get("queries", ())],
            invocations=data.get("invocations", 120),
            threads=data.get("threads", 8),
            capacity=data.get("capacity", 64),
            seed=data.get("seed", 0),
            execute=data.get("execute", True),
            execution_mode=data.get("execution_mode", "row"),
            shards=data.get("shards", 1),
            tenants=data.get("tenants", 0),
        )

    @classmethod
    def load(cls, path):
        """Load a spec from a JSON file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    @classmethod
    def default(cls, invocations=120, threads=8, seed=0, execute=True):
        """The built-in demonstration mix: three shapes, skewed weights."""
        return cls(
            [
                ServiceQuerySpec(1, weight=3),
                ServiceQuerySpec(2, weight=2),
                ServiceQuerySpec(4, topology="chain", weight=1),
            ],
            invocations=invocations,
            threads=threads,
            seed=seed,
            execute=execute,
        )

    def replace(self, **overrides):
        """A copy of this spec with some scalar fields overridden."""
        fields = {
            "queries": self.queries,
            "invocations": self.invocations,
            "threads": self.threads,
            "capacity": self.capacity,
            "seed": self.seed,
            "execute": self.execute,
            "execution_mode": self.execution_mode,
            "shards": self.shards,
            "tenants": self.tenants,
        }
        unknown = set(overrides) - set(fields)
        if unknown:
            raise OptimizationError(
                "unknown service spec fields: %s" % ", ".join(sorted(unknown))
            )
        fields.update(overrides)
        return ServiceWorkloadSpec(**fields)

    def max_relations(self):
        """Relation count of the largest query in the mix."""
        return max(query.relations for query in self.queries)

    def __repr__(self):
        return "ServiceWorkloadSpec(%d queries, %d invocations, %d threads)" % (
            len(self.queries),
            self.invocations,
            self.threads,
        )


def build_service_workloads(spec):
    """Materialize a spec's queries over one shared catalog.

    Returns a list of :class:`~repro.workloads.queries.Workload`
    objects — one per mix entry, all sharing the same catalog (and
    hence servable by a single :class:`~repro.service.QueryService`).
    """
    specs = default_relation_specs(spec.max_relations(), seed=spec.seed)
    catalog = build_synthetic_catalog(specs, seed=spec.seed)
    workloads = []
    for index, query_spec in enumerate(spec.queries):
        relation_names = [s.name for s in specs[: query_spec.relations]]
        low, high = query_spec.selectivity_bounds
        expected = min(max(0.05, low), high)
        selections = {
            name: make_selection_predicate(
                name, expected, selectivity_bounds=query_spec.selectivity_bounds
            )
            for name in relation_names
        }
        query = QuerySpec(
            relations=relation_names,
            selections=selections,
            join_predicates=make_join_predicates(relation_names, query_spec.topology),
            memory_uncertain=query_spec.memory_uncertain,
            name="svc%d-%dway-%s"
            % (index, query_spec.relations, query_spec.topology),
        )
        workloads.append(Workload(catalog, query, specs, spec.seed))
    return workloads


def service_request_bindings(workload, seed, run_index, full_range=False):
    """Deterministic bindings for one service invocation.

    Like :func:`repro.workloads.bindings.random_bindings` but with its
    own derived stream per ``(seed, query, run_index)`` and an optional
    ``full_range`` mode that ignores the predicates' narrowed
    compile-time bounds — the drifting-parameter case that renders a
    cached plan stale.
    """
    query = workload.query
    catalog = workload.catalog
    rng = make_rng(seed, "service-bindings", query.name, run_index)
    bindings = Bindings()
    for relation_name in query.relations:
        predicate = query.selection_for(relation_name)
        if predicate is None:
            continue
        domain = catalog.domain_size(relation_name, SELECTION_ATTRIBUTE)
        variable = predicate.comparison.operand
        if not predicate.is_uncertain:
            if hasattr(variable, "name"):
                bindings.bind_variable(
                    variable.name, predicate.known_selectivity * domain
                )
            continue
        if full_range:
            lower, upper = 0.0, 1.0
        else:
            bounds = predicate.selectivity_bounds
            lower, upper = bounds.lower, bounds.upper
        selectivity = rng.uniform(lower, upper)
        bindings.bind(predicate.selectivity_parameter, selectivity)
        if hasattr(variable, "name"):
            bindings.bind_variable(variable.name, selectivity * domain)
    memory_parameter = query.parameter_space.get(MEMORY_PARAMETER)
    if memory_parameter.uncertain:
        memory = rng.uniform(
            memory_parameter.bounds.lower, memory_parameter.bounds.upper
        )
        bindings.bind(MEMORY_PARAMETER, int(round(memory)))
    return bindings


def generate_service_requests(spec, workloads=None):
    """The spec's full invocation sequence, generated up front.

    Returns ``(workloads, requests)`` where ``requests`` is a list of
    ``(workload, bindings)`` pairs in invocation order.  The weighted
    choice of query per invocation and each invocation's bindings come
    from independent derived streams, so adding a query to the mix
    does not reshuffle the bindings of the others.
    """
    if workloads is None:
        workloads = build_service_workloads(spec)
    mix_rng = make_rng(spec.seed, "service-mix")
    weights = [query.weight for query in spec.queries]
    requests = []
    for index in range(spec.invocations):
        (position,) = mix_rng.choices(range(len(workloads)), weights=weights)
        query_spec = spec.queries[position]
        workload = workloads[position]
        full_range = query_spec.drift > 0.0 and mix_rng.random() < query_spec.drift
        bindings = service_request_bindings(
            workload, spec.seed, index, full_range=full_range
        )
        requests.append((workload, bindings))
    return workloads, requests
