"""Experimental workloads: the paper's five queries and run-time
binding generators (paper Section 6)."""

from repro.workloads.bindings import (
    binding_series,
    random_bindings,
    skewed_bindings,
)
from repro.workloads.queries import (
    PAPER_QUERY_SIZES,
    Workload,
    make_join_workload,
    paper_workload,
)

__all__ = [
    "PAPER_QUERY_SIZES",
    "Workload",
    "binding_series",
    "make_join_workload",
    "paper_workload",
    "random_bindings",
    "skewed_bindings",
]
