"""Experimental workloads: the paper's five queries and run-time
binding generators (paper Section 6)."""

from repro.workloads.bindings import (
    binding_series,
    random_bindings,
    skewed_bindings,
)
from repro.workloads.queries import (
    PAPER_QUERY_SIZES,
    Workload,
    make_join_workload,
    paper_workload,
)
from repro.workloads.traffic import (
    HeavyTrafficSpec,
    TrafficRequest,
    build_traffic_queries,
    generate_traffic,
    request_stream_json,
    to_service_requests,
    zipf_weights,
)

__all__ = [
    "HeavyTrafficSpec",
    "PAPER_QUERY_SIZES",
    "TrafficRequest",
    "Workload",
    "binding_series",
    "build_traffic_queries",
    "generate_traffic",
    "make_join_workload",
    "paper_workload",
    "random_bindings",
    "request_stream_json",
    "skewed_bindings",
    "to_service_requests",
    "zipf_weights",
]
