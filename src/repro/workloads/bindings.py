"""Random run-time bindings for the experiments (paper Section 6).

"The random values for selectivities of selection operations are
chosen from a uniform distribution over the interval [0, 1]. ...
When memory was considered an unbound parameter, a run-time value for
the number of pages was chosen from a uniform distribution over
[16, 112]."

Besides the selectivity parameters themselves (consumed by the
choose-plan decision procedures), each binding set carries matching
*user-variable values* so the execution engine produces result sets
whose actual selectivities equal the drawn parameters: the selection
attribute is uniform over ``[0, domain)``, so ``a < s * domain`` has
selectivity ``s``.
"""

from repro.common.rng import make_rng
from repro.cost.parameters import Bindings, MEMORY_PARAMETER
from repro.workloads.queries import SELECTION_ATTRIBUTE


def random_bindings(workload, seed=0, run_index=0):
    """One random binding set for a workload."""
    query = workload.query
    catalog = workload.catalog
    rng = make_rng(seed, "bindings", query.name, run_index)
    bindings = Bindings()
    for relation_name in query.relations:
        predicate = query.selection_for(relation_name)
        if predicate is None:
            continue
        domain = catalog.domain_size(relation_name, SELECTION_ATTRIBUTE)
        variable = predicate.comparison.operand
        if not predicate.is_uncertain:
            # Known selectivity: the executor still needs the user
            # variable; pick the value matching the known selectivity
            # so the compile-time estimate is accurate.
            if hasattr(variable, "name"):
                bindings.bind_variable(
                    variable.name, predicate.known_selectivity * domain
                )
            continue
        bounds = predicate.selectivity_bounds
        selectivity = rng.uniform(bounds.lower, bounds.upper)
        bindings.bind(predicate.selectivity_parameter, selectivity)
        if hasattr(variable, "name"):
            bindings.bind_variable(variable.name, selectivity * domain)
    memory_parameter = query.parameter_space.get(MEMORY_PARAMETER)
    if memory_parameter.uncertain:
        memory = rng.uniform(
            memory_parameter.bounds.lower, memory_parameter.bounds.upper
        )
        bindings.bind(MEMORY_PARAMETER, int(round(memory)))
    return bindings


def skewed_bindings(workload, declared=0.02, actual=0.6, seed=0):
    """Bindings whose declared selectivities lie about the data.

    Every uncertain selection parameter is *declared* as ``declared``
    (what the start-up decision procedures are told) while the bound
    user-variable value implies an *actual* selectivity of ``actual``
    — the data really qualifies at that rate.  The start-up decision
    therefore optimizes for the wrong cardinalities, and the first
    pipeline breaker observes the divergence: the scenario mid-query
    re-optimization exists for.  Both rates are clamped to each
    predicate's compile-time bounds so no *staleness* machinery
    triggers — the lie is only visible at run time.

    ``seed`` jitters nothing; it is accepted for signature parity with
    :func:`random_bindings` and reserved for future per-relation skew.
    """
    del seed
    query = workload.query
    catalog = workload.catalog
    bindings = Bindings()
    for relation_name in query.relations:
        predicate = query.selection_for(relation_name)
        if predicate is None:
            continue
        domain = catalog.domain_size(relation_name, SELECTION_ATTRIBUTE)
        variable = predicate.comparison.operand
        if not predicate.is_uncertain:
            if hasattr(variable, "name"):
                bindings.bind_variable(
                    variable.name, predicate.known_selectivity * domain
                )
            continue
        bounds = predicate.selectivity_bounds
        told = min(max(declared, bounds.lower), bounds.upper)
        truth = min(max(actual, bounds.lower), bounds.upper)
        bindings.bind(predicate.selectivity_parameter, told)
        if hasattr(variable, "name"):
            bindings.bind_variable(variable.name, truth * domain)
    memory_parameter = query.parameter_space.get(MEMORY_PARAMETER)
    if memory_parameter.uncertain:
        bindings.bind(
            MEMORY_PARAMETER,
            int(round(memory_parameter.expected)),
        )
    return bindings


def binding_series(workload, count=100, seed=0):
    """The paper's N independent binding sets (N = 100 by default)."""
    return [
        random_bindings(workload, seed=seed, run_index=index)
        for index in range(count)
    ]
