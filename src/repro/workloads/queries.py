"""The paper's experimental queries (Section 6).

Five queries of increasing complexity:

* query 1 — one relation, one unbound selection predicate (the
  motivating example);
* query 2 — two-way join, two selections;
* query 3 — four-way join, four selections;
* query 4 — six-way join, six selections;
* query 5 — ten-way join, ten selections.

Every selection predicate's selectivity is uncertain (uniform over
[0, 1] at run time, expected value 0.05 at compile time); join
predicate selectivities are computed from the attribute domain sizes
and considered known.  Relations have 100-1,000 records of 512 bytes,
attribute domains of 0.2-1.25 x cardinality, and unclustered B-trees
on all selection and join attributes.

Naming conventions used throughout the library:

* selection on relation ``R``: ``R.a < :v_R`` with selectivity
  parameter ``sel_R``;
* chain joins: ``Ri.b = R(i+1).c``; star joins: ``R1.b = Ri.c``.
"""

from repro.algebra.expressions import (
    Comparison,
    ComparisonOp,
    JoinPredicate,
    SelectionPredicate,
    UserVariable,
)
from repro.catalog.synthetic import build_synthetic_catalog, default_relation_specs
from repro.common.errors import OptimizationError
from repro.optimizer.query import QuerySpec

#: Paper query number -> relation count.
PAPER_QUERY_SIZES = {1: 1, 2: 2, 3: 4, 4: 6, 5: 10}

#: Attribute carrying the unbound selection predicate.
SELECTION_ATTRIBUTE = "a"


def selection_parameter_name(relation_name):
    """Name of the selectivity parameter of a relation's selection."""
    return "sel_%s" % relation_name


def selection_variable_name(relation_name):
    """Name of the user variable of a relation's selection."""
    return "v_%s" % relation_name


def make_selection_predicate(
    relation_name,
    expected_selectivity=0.05,
    uncertain=True,
    selectivity_bounds=(0.0, 1.0),
):
    """``R.a < :v_R`` with an uncertain selectivity parameter.

    With ``uncertain=False`` the predicate still references the user
    variable (the executor needs a value to filter by) but its
    selectivity is *known* at compile time — used by the partial-
    uncertainty sweep to vary the number of uncertain variables while
    holding the query shape fixed.
    """
    comparison = Comparison(
        "%s.%s" % (relation_name, SELECTION_ATTRIBUTE),
        ComparisonOp.LT,
        UserVariable(selection_variable_name(relation_name)),
    )
    if not uncertain:
        return SelectionPredicate(
            comparison, known_selectivity=expected_selectivity
        )
    return SelectionPredicate(
        comparison,
        selectivity_parameter=selection_parameter_name(relation_name),
        selectivity_bounds=selectivity_bounds,
        expected_selectivity=expected_selectivity,
    )


def make_join_predicates(relation_names, topology="chain"):
    """Join predicates for a relation list under a topology."""
    if len(relation_names) < 2:
        return []
    if topology == "chain":
        return [
            JoinPredicate(
                "%s.b" % relation_names[i], "%s.c" % relation_names[i + 1]
            )
            for i in range(len(relation_names) - 1)
        ]
    if topology == "star":
        center = relation_names[0]
        return [
            JoinPredicate("%s.b" % center, "%s.c" % satellite)
            for satellite in relation_names[1:]
        ]
    if topology == "cycle":
        predicates = make_join_predicates(relation_names, "chain")
        predicates.append(
            JoinPredicate("%s.b" % relation_names[-1], "%s.c" % relation_names[0])
        )
        return predicates
    raise OptimizationError("unknown join topology %r" % topology)


class Workload:
    """A catalog plus a query over it (one experimental unit)."""

    def __init__(self, catalog, query, specs, seed):
        self.catalog = catalog
        self.query = query
        self.specs = specs
        self.seed = seed

    @property
    def name(self):
        """The query's name."""
        return self.query.name

    def __repr__(self):
        return "Workload(%s over %d relations)" % (
            self.name,
            len(self.query.relations),
        )


def make_join_workload(
    relation_count,
    topology="chain",
    memory_uncertain=False,
    seed=0,
    expected_selectivity=0.05,
    uncertain_selections=None,
    selectivity_bounds=(0.0, 1.0),
    name=None,
):
    """A k-way join workload matching the paper's setup.

    ``uncertain_selections`` limits how many relations (taken in order)
    carry *uncertain* selection predicates; the remaining selections
    have known selectivity.  ``None`` (the default) makes all of them
    uncertain, as in the paper's experiments.  ``selectivity_bounds``
    narrows the compile-time uncertainty of the unbound predicates
    (the paper uses the maximally uncertain [0, 1]); the expected
    value is clamped into the bounds.
    """
    specs = default_relation_specs(relation_count, seed=seed)
    catalog = build_synthetic_catalog(specs, seed=seed)
    relation_names = [spec.name for spec in specs]
    if uncertain_selections is None:
        uncertain_selections = relation_count
    low, high = selectivity_bounds
    clamped_expected = min(max(expected_selectivity, low), high)
    selections = {
        relation_name: make_selection_predicate(
            relation_name,
            clamped_expected,
            uncertain=(index < uncertain_selections),
            selectivity_bounds=selectivity_bounds,
        )
        for index, relation_name in enumerate(relation_names)
    }
    query = QuerySpec(
        relations=relation_names,
        selections=selections,
        join_predicates=make_join_predicates(relation_names, topology),
        memory_uncertain=memory_uncertain,
        name=name or "%d-way-%s" % (relation_count, topology),
    )
    return Workload(catalog, query, specs, seed)


def paper_workload(query_number, memory_uncertain=False, seed=0):
    """One of the paper's five queries (1-5)."""
    if query_number not in PAPER_QUERY_SIZES:
        raise OptimizationError(
            "paper query number must be 1-5, got %r" % query_number
        )
    relation_count = PAPER_QUERY_SIZES[query_number]
    suffix = "+mem" if memory_uncertain else ""
    return make_join_workload(
        relation_count,
        topology="chain",
        memory_uncertain=memory_uncertain,
        seed=seed,
        name="query%d%s" % (query_number, suffix),
    )
