"""Quickstart: the paper's motivating example (Section 2, Figure 1).

A single-relation query with an unbound predicate::

    SELECT * FROM R1 WHERE R1.a < :v

At compile time the selectivity of ``R1.a < :v`` is unknown, so the
optimizer cannot decide between a file scan and an unclustered B-tree
scan.  A *static* optimizer guesses (expected selectivity 0.05, which
favours the index); a *dynamic* plan keeps both alternatives behind a
choose-plan operator and decides at start-up time, when ``:v`` is
bound.

Run:  python examples/quickstart.py
"""

from repro import (
    Bindings,
    Database,
    execute_plan,
    optimize_dynamic,
    optimize_static,
    paper_workload,
    plan_to_text,
    populate_database,
    resolve_dynamic_plan,
)
from repro.scenarios import predicted_execution_seconds


def main():
    # The paper's query 1: one relation, one unbound selection.
    workload = paper_workload(1)
    catalog, query = workload.catalog, workload.query

    print("=== compile time ===")
    static = optimize_static(catalog, query)
    print("static plan (optimized for selectivity 0.05):")
    print(plan_to_text(static.plan))
    print()

    dynamic = optimize_dynamic(catalog, query)
    print("dynamic plan (cost intervals, choose-plan operator):")
    print(plan_to_text(dynamic.plan))
    print()

    # Load actual data so the plans can really run.
    database = Database(catalog)
    populate_database(database, seed=0)
    domain = catalog.domain_size("R1", "a")

    print("=== start-up time / run time ===")
    for selectivity in (0.01, 0.30, 0.90):
        bindings = (
            Bindings()
            .bind("sel_R1", selectivity)
            .bind_variable("v_R1", selectivity * domain)
        )
        chosen, report = resolve_dynamic_plan(
            dynamic.plan, catalog, query.parameter_space, bindings
        )
        static_cost = predicted_execution_seconds(
            static.plan, catalog, query.parameter_space, bindings
        )
        dynamic_cost = predicted_execution_seconds(
            chosen, catalog, query.parameter_space, bindings
        )
        executed = execute_plan(
            chosen, database, bindings, query.parameter_space
        )
        print(
            "selectivity %.2f: choose-plan picked %-20s "
            "static %.3fs vs dynamic %.3fs (%.1fx) — %d rows returned"
            % (
                selectivity,
                chosen.operator_name(),
                static_cost,
                dynamic_cost,
                static_cost / dynamic_cost,
                executed.row_count,
            )
        )


if __name__ == "__main__":
    main()
