"""Plan shrinking: the self-replacing access module (Section 4).

A dynamic plan carries every potentially optimal alternative, which
costs module I/O at each start-up.  The paper proposes letting the
access module record which alternatives are actually chosen and, after
a number of invocations, replace itself with a module containing only
those — a heuristic, because a discarded alternative may have been
optimal for future bindings.

This script drives an application whose bindings are *clustered* (low
selectivities most of the time), shows the module shrinking, and then
demonstrates the residual risk when an out-of-distribution binding
arrives.

Run:  python examples/plan_shrinking.py
"""

from repro import (
    ShrinkingAccessModule,
    optimize_dynamic,
    paper_workload,
)
from repro.executor import resolve_dynamic_plan
from repro.scenarios import predicted_execution_seconds
from repro.workloads import random_bindings


def main():
    workload = paper_workload(2)
    catalog, query = workload.catalog, workload.query
    dynamic = optimize_dynamic(catalog, query)

    module = ShrinkingAccessModule(
        dynamic.plan,
        catalog,
        query.parameter_space,
        query_name=workload.name,
        shrink_after=8,
    )
    print(
        "initial module: %d nodes (%.2f ms activation I/O)"
        % (module.node_count, module.module.read_seconds() * 1000)
    )

    # Phase 1: a stable application — selectivities always small.
    domains = {
        relation: catalog.domain_size(relation, "a")
        for relation in query.relations
    }
    for run in range(8):
        bindings = random_bindings(workload, seed=200 + run)
        for relation in query.relations:
            selectivity = 0.01 + 0.002 * run
            bindings.bind("sel_%s" % relation, selectivity)
            bindings.bind_variable(
                "v_%s" % relation, selectivity * domains[relation]
            )
        module.activate(bindings)
    print(
        "after 8 similar invocations and one shrink: %d nodes "
        "(%.2f ms activation I/O), %d shrink(s)"
        % (
            module.node_count,
            module.module.read_seconds() * 1000,
            module.shrink_count,
        )
    )

    # Phase 2: an out-of-distribution binding arrives.
    surprise = random_bindings(workload, seed=999)
    for relation in query.relations:
        surprise.bind("sel_%s" % relation, 0.95)
        surprise.bind_variable("v_%s" % relation, 0.95 * domains[relation])
    chosen, _ = module.activate(surprise)
    shrunk_cost = predicted_execution_seconds(
        chosen, catalog, query.parameter_space, surprise
    )
    optimal_plan, _ = resolve_dynamic_plan(
        dynamic.plan, catalog, query.parameter_space, surprise
    )
    optimal_cost = predicted_execution_seconds(
        optimal_plan, catalog, query.parameter_space, surprise
    )
    print()
    print("surprise binding (selectivity 0.95 everywhere):")
    print("  shrunk module executes at %.3fs" % shrunk_cost)
    print("  full dynamic plan would execute at %.3fs" % optimal_cost)
    if shrunk_cost > optimal_cost * 1.01:
        print(
            "  -> the heuristic's risk, exactly as the paper warns: a "
            "removed alternative was optimal here (%.1fx regret)"
            % (shrunk_cost / optimal_cost)
        )
    else:
        print("  -> no regret for this binding")


if __name__ == "__main__":
    main()
