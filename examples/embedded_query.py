"""Embedded query with a host variable (Section 2, Figure 2).

The paper's second example: a hash join of R and S where S's size is
predictable but R is filtered by a user variable::

    SELECT * FROM R, S WHERE R.a < :v AND R.b = S.c

Hash joins perform much better when the *smaller* input builds the
hash table, so the dynamic plan contains both join orders (and both
scan methods for R) behind choose-plan operators.  This script shows
the decision flipping as the application binds different values of
``:v``, and validates the choice against real execution statistics.

Run:  python examples/embedded_query.py
"""

from repro import (
    Bindings,
    Database,
    HashJoin,
    execute_plan,
    optimize_dynamic,
    paper_workload,
    plan_to_text,
    populate_database,
    resolve_dynamic_plan,
)


def describe_join(plan):
    """Which relation builds the hash table (if a hash join won)."""
    if isinstance(plan, HashJoin):
        build_relations = sorted(
            node.relation_name
            for node in plan.build.walk_unique()
            if getattr(node, "relation_name", None)
        )
        return "%s with build side %s" % (
            plan.operator_name(),
            "+".join(build_relations),
        )
    return plan.operator_name()


def main():
    workload = paper_workload(2)
    catalog, query = workload.catalog, workload.query

    dynamic = optimize_dynamic(catalog, query)
    print("dynamic plan for the embedded two-way join:")
    print(plan_to_text(dynamic.plan, show_cost=False))
    print()

    database = Database(catalog)
    populate_database(database, seed=0)

    domain_r1 = catalog.domain_size("R1", "a")
    domain_r2 = catalog.domain_size("R2", "a")

    scenarios = [
        ("R1 tiny, R2 large", 0.02, 0.90),
        ("R1 large, R2 tiny", 0.90, 0.02),
        ("both mid-sized", 0.40, 0.40),
    ]
    for label, sel_r1, sel_r2 in scenarios:
        bindings = (
            Bindings()
            .bind("sel_R1", sel_r1)
            .bind_variable("v_R1", sel_r1 * domain_r1)
            .bind("sel_R2", sel_r2)
            .bind_variable("v_R2", sel_r2 * domain_r2)
        )
        chosen, report = resolve_dynamic_plan(
            dynamic.plan, catalog, query.parameter_space, bindings
        )
        executed = execute_plan(
            chosen, database, bindings, query.parameter_space
        )
        print(
            "%-20s -> %-35s (%d decisions, %.1f ms decision CPU, "
            "%d rows, %d pages read)"
            % (
                label,
                describe_join(chosen),
                report.decisions,
                report.cpu_seconds * 1000,
                executed.row_count,
                executed.io_snapshot["pages_read"],
            )
        )


if __name__ == "__main__":
    main()
