"""Adapting to run-time resource availability (memory).

Beyond host variables, the paper targets "run-time system loads
unpredictable at compile-time": the memory available to hash joins
and sorts.  This script optimizes the four-way join with *memory as
an uncertain parameter* (expected 64 pages, actual anywhere in
[16, 112] — paper Section 6) and shows the chosen plan changing with
the memory actually granted at start-up time.

Run:  python examples/resource_adaptation.py
"""

from repro import optimize_dynamic, optimize_static, paper_workload
from repro.scenarios import predicted_execution_seconds
from repro.executor import resolve_dynamic_plan
from repro.workloads import random_bindings


def plan_fingerprint(plan):
    """A compact description of the operators used."""
    counts = {}
    for node in plan.walk_unique():
        name = node.operator_name()
        counts[name] = counts.get(name, 0) + 1
    return ", ".join(
        "%dx %s" % (count, name) for name, count in sorted(counts.items())
    )


def main():
    workload = paper_workload(3, memory_uncertain=True)
    catalog, query = workload.catalog, workload.query
    print(
        "query %s: %d uncertain selectivities + uncertain memory"
        % (workload.name, len(query.relations))
    )

    static = optimize_static(catalog, query)
    dynamic = optimize_dynamic(catalog, query)
    print(
        "static plan: %d nodes | dynamic plan: %d nodes, %d choose-plan"
        % (
            static.node_count(),
            dynamic.node_count(),
            dynamic.choose_plan_count(),
        )
    )
    print()

    # Same data volume (one drawn binding set), different memory grants.
    for memory_pages in (16, 48, 112):
        bindings = random_bindings(workload, seed=3)
        bindings.bind("memory_pages", memory_pages)
        chosen, _ = resolve_dynamic_plan(
            dynamic.plan, catalog, query.parameter_space, bindings
        )
        static_cost = predicted_execution_seconds(
            static.plan, catalog, query.parameter_space, bindings
        )
        dynamic_cost = predicted_execution_seconds(
            chosen, catalog, query.parameter_space, bindings
        )
        print(
            "memory %3d pages: dynamic %.3fs vs static %.3fs (%.1fx)"
            % (
                memory_pages,
                dynamic_cost,
                static_cost,
                static_cost / dynamic_cost,
            )
        )
        print("   chosen plan: %s" % plan_fingerprint(chosen))
    print()
    print(
        "note: the static plan was compiled for 64 pages and cannot react;"
    )
    print(
        "the dynamic plan re-evaluates its cost functions with the actual"
    )
    print("grant and switches join strategies accordingly.")


if __name__ == "__main__":
    main()
