"""Run-time decisions with observed cardinalities (Section 7).

Start-up-time resolution can only be as good as the parameter values
it is given.  If the selectivity *estimates* are wrong — here the
application claims 5 % but the data delivers 90 % — every start-up
decision is fooled.  The paper's future-work sketch evaluates subplans
into temporary results so their actual properties can drive the
remaining decisions; ``repro.executor.adaptive`` implements it.

Run:  python examples/adaptive_execution.py
"""

from repro import (
    Database,
    optimize_dynamic,
    paper_workload,
    populate_database,
    random_bindings,
    resolve_dynamic_plan,
)
from repro.algebra.physical import Materialized
from repro.executor import execute_adaptively
from repro.executor.startup import _rebuild
from repro.scenarios import predicted_execution_seconds


def strip_materialized(plan):
    """Trace temporaries back to the plans that produced them."""
    if isinstance(plan, Materialized):
        return strip_materialized(plan.original)
    return _rebuild(plan, [strip_materialized(c) for c in plan.inputs()])


def bindings_claiming(workload, claimed, actual):
    """Bindings whose estimates lie: parameters say ``claimed`` but the
    user-variable values make the data deliver ``actual``."""
    bindings = random_bindings(workload, seed=0)
    for relation in workload.query.relations:
        domain = workload.catalog.domain_size(relation, "a")
        bindings.bind("sel_%s" % relation, claimed)
        bindings.bind_variable("v_%s" % relation, actual * domain)
    return bindings


def main():
    workload = paper_workload(3)
    catalog, query = workload.catalog, workload.query
    space = query.parameter_space
    database = Database(catalog)
    populate_database(database, seed=0)

    dynamic = optimize_dynamic(catalog, query)
    claimed, actual = 0.05, 0.9
    lied = bindings_claiming(workload, claimed, actual)
    truth = bindings_claiming(workload, actual, actual)

    print(
        "4-way join; estimates claim selectivity %.2f, data delivers %.2f"
        % (claimed, actual)
    )
    print()

    fooled, _ = resolve_dynamic_plan(dynamic.plan, catalog, space, lied)
    fooled_cost = predicted_execution_seconds(fooled, catalog, space, truth)
    print(
        "start-up resolution (trusts the estimates): true cost %.1fs"
        % fooled_cost
    )

    result, report = execute_adaptively(dynamic.plan, database, lied, space)
    adaptive_cost = predicted_execution_seconds(
        strip_materialized(report.final_plan), catalog, space, truth
    )
    print(
        "adaptive execution (observes %d temporaries, %d records): "
        "true cost %.1fs" % (
            report.materialized_subplans,
            report.materialized_records,
            adaptive_cost,
        )
    )

    optimal, _ = resolve_dynamic_plan(dynamic.plan, catalog, space, truth)
    optimal_cost = predicted_execution_seconds(optimal, catalog, space, truth)
    print("perfect information would achieve:        true cost %.1fs" % optimal_cost)
    print()
    print(
        "recovered %.0f%% of the estimation-error penalty; the rest is "
        "the scan decisions," % (
            100.0
            * (fooled_cost - adaptive_cost)
            / max(fooled_cost - optimal_cost, 1e-9)
        )
    )
    print("which must be made before anything can be observed.")
    print("result rows: %d (identical under every strategy)" % result.row_count)


if __name__ == "__main__":
    main()
