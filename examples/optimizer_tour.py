"""A tour of the optimizer's internals.

Walks through what the Volcano-style engine does for the paper's
four-way join: rule exploration (memo groups, m-exprs, logical
alternatives), physical optimization with interval costs, dominance
pruning statistics, the exhaustive-plan mode, and the serialized
access module.

Run:  python examples/optimizer_tour.py
"""

from repro import (
    AccessModule,
    optimize_dynamic,
    optimize_exhaustive,
    optimize_static,
    paper_workload,
)


def show(title, value):
    print("%-46s %s" % (title + ":", value))


def main():
    workload = paper_workload(3)
    catalog, query = workload.catalog, workload.query
    print("query: 4-way chain join, one unbound selection per relation")
    print()

    print("=== exploration (transformation rules) ===")
    dynamic = optimize_dynamic(catalog, query)
    stats = dynamic.statistics
    show("memo groups", stats.groups_created)
    show("logical m-exprs", stats.mexprs_total)
    show("rule applications", stats.rule_applications)
    show("distinct bushy join trees encoded", dynamic.logical_alternatives())
    print()

    print("=== physical optimization (interval costs) ===")
    show("candidate plans costed", stats.candidates_considered)
    show("pruned by branch-and-bound", stats.pruned_by_bound)
    show("pruned by interval dominance", stats.pruned_by_dominance)
    show("cost-function evaluations", stats.cost_evaluations)
    show("compile-time cost interval", dynamic.cost)
    print()

    print("=== the three plan flavours ===")
    static = optimize_static(catalog, query)
    exhaustive = optimize_exhaustive(catalog, query)
    show("static plan nodes", static.node_count())
    show(
        "dynamic plan nodes / choose-plans",
        "%d / %d" % (dynamic.node_count(), dynamic.choose_plan_count()),
    )
    show(
        "exhaustive plan nodes / choose-plans",
        "%d / %d" % (exhaustive.node_count(), exhaustive.choose_plan_count()),
    )
    show(
        "DAG sharing saves (tree/DAG node ratio)",
        "%.1fx" % (dynamic.plan.tree_node_count() / dynamic.node_count()),
    )
    print()

    print("=== access modules ===")
    for name, result in (("static", static), ("dynamic", dynamic)):
        module = AccessModule.from_plan(result.plan, name)
        show(
            "%s module" % name,
            "%d nodes, %d bytes, %.2f ms read time"
            % (module.node_count, module.byte_size,
               module.read_seconds() * 1000),
        )


if __name__ == "__main__":
    main()
