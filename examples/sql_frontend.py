"""Embedded SQL with host variables, end to end.

The paper's target application: an SQL query inside a host program,
with ``:variables`` bound at run time.  This script parses such a
query, compiles a dynamic plan once, and runs it for several host-
variable bindings — the dynamic plan adapting where a static plan
could not.

Run:  python examples/sql_frontend.py
"""

from repro import (
    Bindings,
    Database,
    execute_plan,
    optimize_dynamic,
    optimize_static,
    parse_query,
    paper_workload,
    populate_database,
    resolve_dynamic_plan,
)
from repro.scenarios import predicted_execution_seconds

SQL = (
    "SELECT * FROM R1, R2 "
    "WHERE R1.a < :limit1 AND R1.b = R2.c AND R2.a < :limit2"
)


def main():
    # Reuse the paper's synthetic catalog; any Catalog works.
    workload = paper_workload(2)
    catalog = workload.catalog

    print("embedded query:")
    print("   " + SQL)
    query = parse_query(SQL, catalog, name="embedded")
    print(
        "parsed: %d relations, %d join predicate(s), %d unbound "
        "selectivities"
        % (
            len(query.relations),
            len(query.join_predicates),
            query.uncertain_variable_count(),
        )
    )
    print()

    # Compile once (this is what a precompiler would ship).
    dynamic = optimize_dynamic(catalog, query)
    static = optimize_static(catalog, query)
    print(
        "compiled: dynamic plan %d nodes (%d choose-plan), static plan "
        "%d nodes"
        % (dynamic.node_count(), dynamic.choose_plan_count(),
           static.node_count())
    )
    print()

    database = Database(catalog)
    populate_database(database, seed=0)
    domain1 = catalog.domain_size("R1", "a")
    domain2 = catalog.domain_size("R2", "a")

    print("application runs (host variables bound per invocation):")
    for limit1_sel, limit2_sel in ((0.05, 0.05), (0.7, 0.1), (0.9, 0.9)):
        bindings = (
            Bindings()
            .bind("sel_R1", limit1_sel)
            .bind_variable("limit1", limit1_sel * domain1)
            .bind("sel_R2", limit2_sel)
            .bind_variable("limit2", limit2_sel * domain2)
        )
        chosen, _ = resolve_dynamic_plan(
            dynamic.plan, catalog, query.parameter_space, bindings
        )
        static_cost = predicted_execution_seconds(
            static.plan, catalog, query.parameter_space, bindings
        )
        dynamic_cost = predicted_execution_seconds(
            chosen, catalog, query.parameter_space, bindings
        )
        executed = execute_plan(
            chosen, database, bindings, query.parameter_space
        )
        print(
            "  :limit1~%.2f :limit2~%.2f -> %-12s %4d rows, "
            "dynamic %.2fs vs static %.2fs"
            % (
                limit1_sel,
                limit2_sel,
                chosen.operator_name(),
                executed.row_count,
                dynamic_cost,
                static_cost,
            )
        )


if __name__ == "__main__":
    main()
